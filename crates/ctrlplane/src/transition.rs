//! The control plane's lease-transition driver.
//!
//! `poc-transition` plans and executes a safe migration between link
//! sets; this module is the glue that makes it *durable*:
//!
//! * [`JournalingHooks`] journals every step as its own
//!   [`JournalEvent::TransitionStep`] record **before** touching the
//!   lease book (write-ahead discipline), so the journal always brackets
//!   exactly the lease operations that landed;
//! * [`run_transition`] is the live `BeginTransition` path:
//!   `TransitionBegun` → journaled steps → `TransitionCommitted` (or
//!   `TransitionAborted`);
//! * [`ReplayTracker`] replays transition records during startup
//!   recovery. `TransitionBegun` recomputes the deterministic target
//!   outcome; each `TransitionStep` re-applies exactly its lease
//!   operation (idempotently — the facade tolerates an already-booked
//!   add and an already-expired remove);
//! * [`finish_open_transition`] resolves a journal that ends
//!   mid-transition (the server died between step records): plan from
//!   the recovered mid-state *forward* to the target and finish the
//!   walk, else plan a rollback to the pre-transition set, else restore
//!   it in one atomic install. Every path keeps journaling, so crashing
//!   *again* during recovery is just another recoverable crash.
//!
//! The invariant all paths preserve: a `TransitionAborted` record means
//! the fabric is atomically back on the pre-transition link set, and a
//! `TransitionCommitted` record means it is on the new outcome's set —
//! replay and live execution agree on both.

use crate::journal::{CrashPoint, JournalEvent};
use crate::proto::{Response, TransitionSummary};
use crate::server::{journal_event, Shared};
use crate::shard::Global;
use poc_auction::AuctionOutcome;
use poc_core::lease::LeaseOpError;
use poc_core::poc::Poc;
use poc_flow::LinkSet;
use poc_topology::LinkId;
use poc_transition::{
    execute_transition, plan_transition, ExecError, PlanConfig, TransitionOp, TransitionOutcome,
    TransitionReport,
};

/// The traffic matrix a transition *targets*: the live matrix scaled by
/// the operator's demand knob (`None` is the identity). Only the target
/// outcome is computed under this forecast; planning and intermediate
/// verification run against the live matrix — that is the traffic the
/// fabric actually carries while the walk is in progress.
fn scaled_tm(
    tm: &poc_traffic::TrafficMatrix,
    demand_scale: Option<f64>,
) -> poc_traffic::TrafficMatrix {
    let mut tm = tm.clone();
    if let Some(s) = demand_scale {
        tm.scale(s);
    }
    tm
}

/// Apply one self-describing transition step to the facade. Adds are
/// priced from the outcome that actually selected the link: the new
/// outcome for forward steps, the still-current old outcome for
/// rollback re-adds (its lease terms are the ones being restored).
/// Replay uses the same function, so pricing is identical either way.
pub(crate) fn apply_step_to_poc(
    poc: &mut Poc,
    outcome: &AuctionOutcome,
    add: bool,
    link: LinkId,
) -> Result<(), LeaseOpError> {
    if add {
        if outcome.selected.contains(link) {
            poc.transition_add_link(outcome, link)
        } else {
            let old = poc.last_outcome().cloned();
            poc.transition_add_link(old.as_ref().unwrap_or(outcome), link)
        }
    } else {
        poc.transition_remove_link(link)
    }
}

/// [`poc_transition::TransitionHooks`] that journal each step before
/// applying it. An armed [`CrashPoint`] firing mid-journal is stashed in
/// `crashed` (the hook trait speaks `String` errors) and re-raised by
/// the caller so the server dies exactly as it does on every other
/// durability path.
pub(crate) struct JournalingHooks<'a> {
    shared: &'a Shared,
    poc: &'a mut Poc,
    outcome: &'a AuctionOutcome,
    /// The true pre-transition set: what `TransitionAborted` restores.
    restore_to: &'a LinkSet,
    pub crashed: Option<CrashPoint>,
}

impl<'a> JournalingHooks<'a> {
    pub fn new(
        shared: &'a Shared,
        poc: &'a mut Poc,
        outcome: &'a AuctionOutcome,
        restore_to: &'a LinkSet,
    ) -> Self {
        Self { shared, poc, outcome, restore_to, crashed: None }
    }

    fn journal(&mut self, event: JournalEvent) -> Result<(), String> {
        match journal_event(self.shared, event) {
            Ok(None) => Ok(()),
            Ok(Some(_refusal)) => Err("durability failure journaling the step".into()),
            Err(p) => {
                self.crashed = Some(p);
                Err(format!("crash injected at {}", p.label()))
            }
        }
    }
}

impl poc_transition::TransitionHooks for JournalingHooks<'_> {
    fn apply_step(
        &mut self,
        _idx: usize,
        op: TransitionOp,
        _state_after: &LinkSet,
    ) -> Result<(), String> {
        self.journal(JournalEvent::TransitionStep { add: op.is_add(), link: op.link().0 })?;
        apply_step_to_poc(self.poc, self.outcome, op.is_add(), op.link()).map_err(|e| e.to_string())
    }

    fn force_restore(&mut self, _links: &LinkSet) -> Result<(), String> {
        // Restore the *pre-transition* set (not whatever the executor's
        // internal bookkeeping converged to): that is the one state the
        // `TransitionAborted` record promises on replay.
        self.journal(JournalEvent::TransitionAborted)?;
        self.poc.force_install(self.restore_to);
        Ok(())
    }
}

fn summarize(report: &TransitionReport, n_from: usize, recovered: bool) -> TransitionSummary {
    TransitionSummary {
        outcome: match report.outcome {
            TransitionOutcome::Committed => "committed",
            TransitionOutcome::RolledBack => "rolled_back",
            TransitionOutcome::ForceRestored => "force_restored",
        }
        .into(),
        steps_applied: report.steps_applied as u64,
        replans: report.replans,
        rollbacks: report.rollbacks,
        n_from_links: n_from,
        n_final_links: report.final_state.len(),
        recovered,
    }
}

/// The live `BeginTransition` path, called under the global lock. The
/// preconditions (an installed fabric, a computable target outcome) are
/// checked *before* the `TransitionBegun` record lands, so a journaled
/// begin always replays into an open transition.
pub(crate) fn run_transition(
    shared: &Shared,
    g: &mut Global,
    max_extra_links: Option<usize>,
    demand_scale: Option<f64>,
) -> Result<Response, CrashPoint> {
    if let Some(s) = demand_scale {
        if !(s.is_finite() && s > 0.0) {
            return Ok(Response::Error {
                message: format!("demand_scale must be a positive finite factor, got {s}"),
            });
        }
    }
    let forecast = scaled_tm(&g.tm, demand_scale);
    // The walk is verified against the live matrix: the current set was
    // selected under it (so a safe first step always exists), and it is
    // what members ride on between steps. The forecast only picks the
    // destination.
    let tm = g.tm.clone();
    let Some(from) = g.poc.installed_links().cloned() else {
        return Ok(Response::Error {
            message: "no installed fabric to transition from; run an auction first".into(),
        });
    };
    let outcome = match g.poc.compute_auction_outcome(&forecast) {
        Ok(o) => o,
        Err(e) => return Ok(Response::Error { message: e.to_string() }),
    };
    if let Some(refusal) =
        journal_event(shared, JournalEvent::TransitionBegun { max_extra_links, demand_scale })?
    {
        return Ok(refusal);
    }

    let topo = g.poc.topo().clone();
    let constraint = g.poc.config().constraint;
    let cfg = PlanConfig { max_extra_links, ..PlanConfig::default() };
    let plan = match plan_transition(&topo, &tm, constraint, &from, &outcome.selected, &cfg) {
        Ok(p) => p,
        Err(e) => {
            // Nothing was applied; close the journal transaction.
            if let Some(refusal) = journal_event(shared, JournalEvent::TransitionAborted)? {
                return Ok(refusal);
            }
            return Ok(Response::Error { message: format!("transition not started: {e}") });
        }
    };

    let mut hooks = JournalingHooks::new(shared, &mut g.poc, &outcome, &from);
    let result = execute_transition(&topo, &tm, constraint, &cfg, plan, &mut hooks);
    let crashed = hooks.crashed;
    match result {
        Ok(report) => {
            match report.outcome {
                TransitionOutcome::Committed => {
                    if let Some(refusal) = journal_event(shared, JournalEvent::TransitionCommitted)?
                    {
                        return Ok(refusal);
                    }
                    g.poc.commit_transition(outcome);
                }
                TransitionOutcome::RolledBack => {
                    // The executor already walked back to `from` through
                    // journaled steps; this record closes the transaction.
                    if let Some(refusal) = journal_event(shared, JournalEvent::TransitionAborted)? {
                        return Ok(refusal);
                    }
                }
                // force_restore journaled the abort and restored already.
                TransitionOutcome::ForceRestored => {}
            }
            let summary = summarize(&report, from.len(), false);
            g.last_transition = Some(summary.clone());
            Ok(Response::TransitionDone(summary))
        }
        Err(ExecError::Hook { step, reason }) => {
            if let Some(p) = crashed {
                return Err(p);
            }
            // A lease operation or journal append refused mid-flight.
            // Every applied step *is* journaled, so closing with an abort
            // record and restoring atomically keeps memory and journal in
            // agreement. If even the abort record cannot land, leave the
            // mid-state as is: it matches the journal exactly, and the
            // next restart resolves it through recovery.
            match journal_event(shared, JournalEvent::TransitionAborted)? {
                None => {
                    g.poc.force_install(&from);
                    Ok(Response::Error {
                        message: format!("transition aborted at step {step}: {reason}"),
                    })
                }
                Some(_refusal) => Ok(Response::Error {
                    message: format!(
                        "transition wedged at step {step} ({reason}); durability is failing — \
                         restart to recover"
                    ),
                }),
            }
        }
    }
}

/// Replay-side state of one in-flight transition.
pub(crate) struct OpenTransition {
    pub outcome: AuctionOutcome,
    /// The installed set when the transition began — what an abort
    /// restores.
    pub original: LinkSet,
    pub max_extra_links: Option<usize>,
    pub steps_replayed: usize,
}

/// Absorbs transition records during journal replay. Non-transition
/// events pass through untouched ([`ReplayTracker::absorb`] returns
/// `false`); a journal ending with an open transition is resolved by
/// [`finish_open_transition`] after replay.
#[derive(Default)]
pub(crate) struct ReplayTracker {
    open: Option<OpenTransition>,
}

impl ReplayTracker {
    /// Absorb one replayed event if it belongs to the transition family.
    pub fn absorb(&mut self, shared: &Shared, event: &JournalEvent) -> bool {
        match event {
            JournalEvent::TransitionBegun { max_extra_links, demand_scale } => {
                let g = shared.state.global.lock();
                let tm = scaled_tm(&g.tm, *demand_scale);
                let original = g.poc.installed_links().cloned();
                let outcome = g.poc.compute_auction_outcome(&tm).ok();
                drop(g);
                // The live path checks both preconditions before
                // journaling the begin record, so these recompute
                // deterministically; `None` here would mean a journal
                // from a different program version — ignore the family.
                self.open = original.zip(outcome).map(|(original, outcome)| OpenTransition {
                    outcome,
                    original,
                    max_extra_links: *max_extra_links,
                    steps_replayed: 0,
                });
                true
            }
            JournalEvent::TransitionStep { add, link } => {
                if let Some(open) = &mut self.open {
                    let mut g = shared.state.global.lock();
                    let _ = apply_step_to_poc(&mut g.poc, &open.outcome, *add, LinkId(*link));
                    open.steps_replayed += 1;
                }
                true
            }
            JournalEvent::TransitionCommitted => {
                if let Some(open) = self.open.take() {
                    let mut g = shared.state.global.lock();
                    g.poc.commit_transition(open.outcome);
                }
                true
            }
            JournalEvent::TransitionAborted => {
                if let Some(open) = self.open.take() {
                    let mut g = shared.state.global.lock();
                    g.poc.force_install(&open.original);
                }
                true
            }
            _ => false,
        }
    }

    /// A transition the journal never closed, if any.
    pub fn take_open(self) -> Option<OpenTransition> {
        self.open
    }
}

/// Resolve a journal that ended mid-transition: resume if a safe plan
/// from the recovered mid-state to the target still exists, otherwise
/// roll back to the pre-transition set (stepwise if possible, atomically
/// as a last resort). New records are journaled throughout, so recovery
/// itself is crash-resumable.
pub(crate) fn finish_open_transition(
    shared: &Shared,
    open: OpenTransition,
) -> Result<(), CrashPoint> {
    poc_obs::counter!("transition.recovered").inc();
    let mut g = shared.state.global.lock();
    // Resume and rollback both plan against the live matrix — the walk
    // must stay safe for the traffic the fabric carries *now*; the
    // forecast already did its job when the target was computed.
    let tm = g.tm.clone();
    let topo = g.poc.topo().clone();
    let constraint = g.poc.config().constraint;
    let cfg = PlanConfig { max_extra_links: open.max_extra_links, ..PlanConfig::default() };
    let current =
        g.poc.installed_links().cloned().unwrap_or_else(|| LinkSet::empty(topo.n_links()));

    // Resume: finish the walk to the target.
    if let Ok(plan) =
        plan_transition(&topo, &tm, constraint, &current, &open.outcome.selected, &cfg)
    {
        let mut hooks = JournalingHooks::new(shared, &mut g.poc, &open.outcome, &open.original);
        let result = execute_transition(&topo, &tm, constraint, &cfg, plan, &mut hooks);
        let crashed = hooks.crashed;
        if let Some(p) = crashed {
            return Err(p);
        }
        if let Ok(report) = result {
            match report.outcome {
                TransitionOutcome::Committed => {
                    if journal_event(shared, JournalEvent::TransitionCommitted)?.is_some() {
                        return Ok(()); // journal refusing; next restart retries
                    }
                    g.poc.commit_transition(open.outcome);
                    let mut summary = summarize(&report, open.original.len(), true);
                    summary.steps_applied += open.steps_replayed as u64;
                    g.last_transition = Some(summary);
                    poc_obs::counter!("transition.recovered.resumed").inc();
                    return Ok(());
                }
                // The hook journaled the abort and restored the original.
                TransitionOutcome::ForceRestored => {
                    let mut summary = summarize(&report, open.original.len(), true);
                    summary.steps_applied += open.steps_replayed as u64;
                    g.last_transition = Some(summary);
                    poc_obs::counter!("transition.recovered.rolled_back").inc();
                    return Ok(());
                }
                // Walked back to the mid-state; fall through to the
                // explicit rollback below.
                TransitionOutcome::RolledBack => {}
            }
        }
    }

    // Rollback: walk from wherever we are back to the pre-transition set.
    let current =
        g.poc.installed_links().cloned().unwrap_or_else(|| LinkSet::empty(topo.n_links()));
    let unbounded = PlanConfig::default();
    if let Ok(plan) = plan_transition(&topo, &tm, constraint, &current, &open.original, &unbounded)
    {
        let mut hooks = JournalingHooks::new(shared, &mut g.poc, &open.outcome, &open.original);
        let result = execute_transition(&topo, &tm, constraint, &unbounded, plan, &mut hooks);
        let crashed = hooks.crashed;
        if let Some(p) = crashed {
            return Err(p);
        }
        if let Ok(report) = result {
            if matches!(
                report.outcome,
                TransitionOutcome::Committed | TransitionOutcome::ForceRestored
            ) {
                if report.outcome == TransitionOutcome::Committed
                    && journal_event(shared, JournalEvent::TransitionAborted)?.is_some()
                {
                    return Ok(());
                }
                g.last_transition = Some(TransitionSummary {
                    outcome: "rolled_back".into(),
                    steps_applied: (open.steps_replayed + report.steps_applied) as u64,
                    replans: report.replans,
                    rollbacks: 1,
                    n_from_links: open.original.len(),
                    n_final_links: open.original.len(),
                    recovered: true,
                });
                poc_obs::counter!("transition.recovered.rolled_back").inc();
                return Ok(());
            }
        }
    }

    // Last resort: close the transaction and restore atomically.
    if journal_event(shared, JournalEvent::TransitionAborted)?.is_some() {
        return Ok(());
    }
    g.poc.force_install(&open.original);
    g.last_transition = Some(TransitionSummary {
        outcome: "force_restored".into(),
        steps_applied: open.steps_replayed as u64,
        replans: 0,
        rollbacks: 1,
        n_from_links: open.original.len(),
        n_final_links: open.original.len(),
        recovered: true,
    });
    poc_obs::counter!("transition.recovered.forced").inc();
    Ok(())
}

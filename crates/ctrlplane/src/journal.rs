//! Append-only write-ahead journal of controller mutations.
//!
//! Every state-mutating request is framed and appended here *before* it
//! is applied to the in-memory [`poc_core::Poc`] (write-ahead
//! discipline), so a controller that loses power mid-period can rebuild
//! its ledger, lease book, and last auction outcome by replaying the
//! journal on top of the newest snapshot (see [`crate::snapshot`] and
//! [`crate::recovery`]).
//!
//! # Record framing
//!
//! ```text
//! [u32 payload length, BE][u32 CRC-32 of payload, BE][payload JSON]
//! ```
//!
//! The payload is one [`JournalRecord`] (sequence number + event)
//! serialized through the in-tree serde shims. The CRC detects torn or
//! bit-rotted tails: [`scan`] reads records until the first frame that
//! is truncated, oversized, CRC-mismatched, or unparsable, and reports
//! the byte offset of the last *valid* record so recovery can truncate
//! the tail and keep appending. A torn tail is an expected artifact of
//! a crash mid-append, never an error.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append latency:
//!
//! * [`FsyncPolicy::Always`] — `fdatasync` after every append; an
//!   acknowledged mutation survives power loss.
//! * [`FsyncPolicy::Interval`] — sync at most once per interval;
//!   bounded data loss, amortized sync cost.
//! * [`FsyncPolicy::Never`] — leave it to the OS page cache; survives a
//!   process crash but not power loss.
//!
//! # Group commit
//!
//! [`GroupJournal`] is the concurrent append path: many mutation
//! threads append records (buffered, under the appender lock), then
//! wait for a *commit leader* to fsync everything appended so far in
//! one `fdatasync`. Under [`FsyncPolicy::Always`] each acknowledged
//! mutation is still durable before its reply — but K concurrent
//! mutations cost ~1 fsync instead of K (`ctrl.journal.batch_size`
//! histogram, `ctrl.journal.group_commits` counter).
//!
//! The leader fsyncs through a duplicated file handle *without* holding
//! the appender lock: it captures the batch extent (seq, byte length)
//! under the lock, releases it, and syncs while the next batch
//! accumulates behind it. `fdatasync` persists at least everything
//! written before the call, so the captured extent is durable on
//! success; records appended during the sync are simply not
//! acknowledged until the next leader covers them. This pipelining is
//! what lets the batch size approach the number of concurrent writers
//! instead of stalling at whatever queued before the lock was taken.
//!
//! A failed group-commit fsync fails **every** record in the batch: the
//! leader rolls the file back to the durable prefix (so a later sync
//! can never quietly commit bytes whose fsync already failed) and every
//! waiter gets a typed [`JournalError::BatchAborted`]. If the rollback
//! itself fails, the journal is poisoned and refuses all further
//! appends ([`JournalError::Poisoned`]).
//!
//! # Crash injection
//!
//! [`CrashSwitch`] is the durability sibling of
//! [`crate::fault::FaultyTransport`]: tests arm one [`CrashPoint`] and
//! the durability layer simulates a process death at exactly that
//! point (a half-written record, a snapshot tmp that never got renamed,
//! …), letting integration tests kill a live server at each point and
//! prove recovery. [`FsyncFault`] is the non-fatal sibling: it makes
//! the next N group-commit fsyncs fail (as a dying disk would) without
//! killing the process. Production code never arms either.

use crate::proto::AttachRole;
use poc_core::entity::EntityId;
use poc_core::tos::TrafficPolicy;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one journal record's payload (mirrors the wire codec's
/// frame cap; a larger length prefix means a corrupt header).
pub const MAX_RECORD: u32 = 1 << 20;

/// Bytes of framing overhead per record (length + CRC).
pub const RECORD_HEADER: usize = 8;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One state-mutating controller event. Mirrors the mutating subset of
/// [`crate::proto::Request`]; read-only requests are never journaled.
/// Replay goes through the same application path as live requests, so a
/// journaled event that *failed* validation (duplicate attach name,
/// non-finite usage) deterministically fails the same way on replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    Attach {
        name: String,
        role: AttachRole,
    },
    ReportUsage {
        entity: EntityId,
        gbps: f64,
    },
    RunAuction,
    RunBilling,
    RecallLink {
        bp: u32,
        link: u32,
        notice_periods: u32,
    },
    ReviewPolicy {
        policy: TrafficPolicy,
    },
    /// A lease transition began. Replay recomputes the target outcome
    /// deterministically (`Poc::compute_auction_outcome` against the
    /// journaled-state traffic matrix scaled by `demand_scale`), so the
    /// record only needs the planner budget and the demand knob.
    TransitionBegun {
        max_extra_links: Option<usize>,
        demand_scale: Option<f64>,
    },
    /// One applied transition step. Self-describing — replay applies
    /// exactly this lease operation, never re-plans — so recovery does
    /// not depend on the planner revisiting the same order.
    TransitionStep {
        add: bool,
        link: u32,
    },
    /// The transition reached its target; the new outcome is current.
    TransitionCommitted,
    /// The transition was abandoned; the fabric is back on the
    /// pre-transition link set (rollback steps, if any, were journaled
    /// as their own `TransitionStep` records before this).
    TransitionAborted,
}

impl JournalEvent {
    /// The journal event for a request, or `None` for read-only
    /// requests (which are never journaled).
    pub fn from_request(request: &crate::proto::Request) -> Option<Self> {
        use crate::proto::Request;
        match request {
            Request::Attach { name, role } => {
                Some(JournalEvent::Attach { name: name.clone(), role: role.clone() })
            }
            Request::ReportUsage { entity, gbps } => {
                Some(JournalEvent::ReportUsage { entity: *entity, gbps: *gbps })
            }
            Request::RunAuction => Some(JournalEvent::RunAuction),
            Request::RunBilling => Some(JournalEvent::RunBilling),
            Request::RecallLink { bp, link, notice_periods } => Some(JournalEvent::RecallLink {
                bp: *bp,
                link: *link,
                notice_periods: *notice_periods,
            }),
            Request::ReviewPolicy { policy } => {
                Some(JournalEvent::ReviewPolicy { policy: policy.clone() })
            }
            Request::BeginTransition { max_extra_links, demand_scale } => {
                Some(JournalEvent::TransitionBegun {
                    max_extra_links: *max_extra_links,
                    demand_scale: *demand_scale,
                })
            }
            // The trace envelope is transparent: a traced mutation
            // journals as the bare mutation (replay never re-traces).
            Request::Traced { request, .. } => Self::from_request(request),
            Request::Ping
            | Request::GetOutcome
            | Request::GetBalance { .. }
            | Request::GetPath { .. }
            | Request::GetLeases
            | Request::GetRecovery
            | Request::Metrics
            | Request::TransitionStatus
            | Request::Trace { .. } => None,
        }
    }

    /// The request this event journals, for replay through the same
    /// application path live requests take. `None` for transition
    /// records: a `TransitionStep` is a *fragment* of a
    /// `BeginTransition`, not a request of its own, so recovery replays
    /// the transition family through its dedicated path
    /// (`crate::transition::ReplayTracker`) instead of the live request
    /// handler.
    pub fn into_request(self) -> Option<crate::proto::Request> {
        use crate::proto::Request;
        match self {
            JournalEvent::Attach { name, role } => Some(Request::Attach { name, role }),
            JournalEvent::ReportUsage { entity, gbps } => {
                Some(Request::ReportUsage { entity, gbps })
            }
            JournalEvent::RunAuction => Some(Request::RunAuction),
            JournalEvent::RunBilling => Some(Request::RunBilling),
            JournalEvent::RecallLink { bp, link, notice_periods } => {
                Some(Request::RecallLink { bp, link, notice_periods })
            }
            JournalEvent::ReviewPolicy { policy } => Some(Request::ReviewPolicy { policy }),
            JournalEvent::TransitionBegun { .. }
            | JournalEvent::TransitionStep { .. }
            | JournalEvent::TransitionCommitted
            | JournalEvent::TransitionAborted => None,
        }
    }

    /// Short label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            JournalEvent::Attach { .. } => "attach",
            JournalEvent::ReportUsage { .. } => "report_usage",
            JournalEvent::RunAuction => "run_auction",
            JournalEvent::RunBilling => "run_billing",
            JournalEvent::RecallLink { .. } => "recall_link",
            JournalEvent::ReviewPolicy { .. } => "review_policy",
            JournalEvent::TransitionBegun { .. } => "transition_begun",
            JournalEvent::TransitionStep { .. } => "transition_step",
            JournalEvent::TransitionCommitted => "transition_committed",
            JournalEvent::TransitionAborted => "transition_aborted",
        }
    }
}

/// One framed journal entry: a monotonically increasing sequence number
/// plus the event. Sequence numbers let recovery skip records already
/// folded into a snapshot (crash after snapshot-rename but before
/// journal truncation must not apply them twice).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    pub seq: u64,
    pub event: JournalEvent,
}

// ---------------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------------

/// When appends reach the platter. See the module docs for the
/// durability trade-offs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append.
    Always,
    /// Sync at most once per interval (first append after the interval
    /// elapses pays the sync).
    Interval(Duration),
    /// Never sync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI-style policy string: `always`, `never`, or
    /// `interval` (100 ms default interval).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy {other:?} (use always, interval, never)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// A point in the durability path where a test can simulate the process
/// dying. Each point leaves exactly the on-disk wreckage a real crash
/// there would: recovery must cope with every one of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die halfway through writing a journal record: the tail is torn
    /// (header + partial payload). The mutation was never acknowledged
    /// and must be absent after recovery.
    MidAppend,
    /// Die after the record is durably appended but before the reply is
    /// sent. The client sees a transport error (outcome ambiguous); the
    /// mutation must be present after recovery — exactly once.
    AfterAppend,
    /// Die after writing and syncing the snapshot temp file but before
    /// the atomic rename. Recovery must ignore the orphan `.tmp` and
    /// rebuild from the previous snapshot + full journal.
    MidSnapshotRename,
    /// Die while a snapshot lands torn at its *final* name (simulates a
    /// non-atomic filesystem or partial sector write). Recovery must
    /// reject the torn newest generation and fall back to the previous
    /// valid one.
    TornSnapshotWrite,
    /// Die after the snapshot is durable but before the journal is
    /// truncated. The journal still holds records the snapshot already
    /// contains; recovery must skip them by sequence number (the
    /// exactly-once case).
    AfterSnapshotBeforeTruncate,
}

impl CrashPoint {
    /// Every defined crash point (integration tests iterate this).
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::MidAppend,
        CrashPoint::AfterAppend,
        CrashPoint::MidSnapshotRename,
        CrashPoint::TornSnapshotWrite,
        CrashPoint::AfterSnapshotBeforeTruncate,
    ];

    /// Short label for logs and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            CrashPoint::MidAppend => "mid_append",
            CrashPoint::AfterAppend => "after_append",
            CrashPoint::MidSnapshotRename => "mid_snapshot_rename",
            CrashPoint::TornSnapshotWrite => "torn_snapshot_write",
            CrashPoint::AfterSnapshotBeforeTruncate => "after_snapshot_before_truncate",
        }
    }
}

/// Shared, cloneable crash trigger. Tests keep one clone and arm it;
/// the server's durability layer holds the other and checks each point
/// as it passes. Unarmed (the default) it costs one mutex lock per
/// check on the mutation path — irrelevant at control-plane rates.
#[derive(Clone, Debug, Default)]
pub struct CrashSwitch {
    armed: Arc<Mutex<Option<(CrashPoint, u32)>>>,
}

impl CrashSwitch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the switch: the next time the durability path passes
    /// `point`, it simulates a crash there.
    pub fn arm(&self, point: CrashPoint) {
        self.arm_after(point, 0);
    }

    /// Arm the switch to fire on the `(skip + 1)`-th pass of `point`,
    /// letting tests die at a chosen *record boundary* inside a
    /// multi-record request (a lease transition journals a begin record,
    /// one record per step, and a commit — all within one request, so
    /// re-arming between them is impossible).
    pub fn arm_after(&self, point: CrashPoint, skip: u32) {
        *self.armed.lock().unwrap() = Some((point, skip));
    }

    /// Disarm without firing.
    pub fn disarm(&self) {
        *self.armed.lock().unwrap() = None;
    }

    /// True (and disarms) iff the switch is armed at exactly `point`
    /// and its skip count has run out; earlier passes count down.
    pub fn fire_if(&self, point: CrashPoint) -> bool {
        let mut armed = self.armed.lock().unwrap();
        match *armed {
            Some((p, 0)) if p == point => {
                *armed = None;
                true
            }
            Some((p, skip)) if p == point => {
                *armed = Some((p, skip - 1));
                false
            }
            _ => false,
        }
    }
}

/// Injectable fsync failure: the next `n` armed group-commit fsyncs
/// fail as a dying disk would, *without* killing the process. Tests use
/// it to prove a failed batch is rolled back and every coalesced
/// mutation in it reports a typed error instead of a bogus ack.
#[derive(Clone, Debug, Default)]
pub struct FsyncFault {
    armed: Arc<AtomicU32>,
}

impl FsyncFault {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the next `failures` group-commit fsyncs to fail.
    pub fn arm(&self, failures: u32) {
        self.armed.store(failures, Ordering::SeqCst);
    }

    /// True (consuming one armed failure) iff the next sync must fail.
    fn take(&self) -> bool {
        self.armed.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from the append path.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    /// A record would exceed [`MAX_RECORD`].
    RecordTooLarge(usize),
    /// An armed [`CrashPoint`] fired: the simulated process is dead and
    /// the server must stop without replying.
    Crashed(CrashPoint),
    /// The group-commit fsync covering this record failed; the whole
    /// batch was rolled back from the file and no record in it may be
    /// acknowledged.
    BatchAborted,
    /// A failed group commit could not be rolled back, so the on-disk
    /// suffix is unknowable; the journal refuses all further appends.
    Poisoned,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::RecordTooLarge(n) => {
                write!(f, "journal record of {n} bytes exceeds {MAX_RECORD}")
            }
            JournalError::Crashed(p) => write!(f, "injected crash at {}", p.label()),
            JournalError::BatchAborted => {
                write!(f, "group-commit fsync failed; batch rolled back, mutation not persisted")
            }
            JournalError::Poisoned => {
                write!(f, "journal poisoned by an unrollbackable fsync failure")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Scanning (recovery read path)
// ---------------------------------------------------------------------------

/// Result of scanning a journal file.
#[derive(Debug)]
pub struct ScanResult {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix; anything beyond is a torn or
    /// corrupt tail and must be truncated before appending resumes.
    pub valid_len: u64,
    /// Whether trailing bytes past the valid prefix were present.
    pub torn_tail: bool,
}

/// Scan `path`, accepting the longest valid prefix of records. A
/// missing file scans as empty. Corruption never fails the scan — it
/// ends it: a crash tears tails, and a torn tail is recoverable state.
pub fn scan(path: &Path) -> std::io::Result<ScanResult> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            // Clean end at a record boundary.
            return Ok(ScanResult { records, valid_len: offset as u64, torn_tail: false });
        }
        if rest.len() < RECORD_HEADER {
            break; // torn header
        }
        let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD as usize || rest.len() < RECORD_HEADER + len {
            break; // corrupt length or torn payload
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if crc32(payload) != crc {
            break; // bit rot or torn write inside the payload
        }
        let Ok(record) = serde_json::from_slice::<JournalRecord>(payload) else {
            break; // framing valid but payload unparsable: treat as corrupt
        };
        records.push(record);
        offset += RECORD_HEADER + len;
    }
    Ok(ScanResult { records, valid_len: offset as u64, torn_tail: true })
}

// ---------------------------------------------------------------------------
// The journal (append path)
// ---------------------------------------------------------------------------

/// The append handle. One per running server; appends happen under the
/// controller state lock, so the journal itself needs no locking.
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Appends since the last explicit sync (drives `Interval` syncs
    /// and the `ctrl.journal.fsyncs` metric).
    unsynced: u64,
    /// Byte length of the file after the last complete append, tracked
    /// arithmetically so the group-commit leader can record (and roll
    /// back to) exact frame boundaries without a metadata syscall.
    end_pos: u64,
}

impl Journal {
    /// Open `path` for appending, first truncating it to `valid_len`
    /// (the scan result) so a torn tail never precedes fresh records.
    pub fn open(path: &Path, valid_len: u64, policy: FsyncPolicy) -> std::io::Result<Self> {
        let file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            policy,
            last_sync: Instant::now(),
            unsynced: 0,
            end_pos: valid_len,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record, honouring the fsync policy and any armed
    /// crash point. On success the record is at least OS-buffered (and
    /// durable under `FsyncPolicy::Always`).
    pub fn append(
        &mut self,
        record: &JournalRecord,
        crash: &CrashSwitch,
    ) -> Result<(), JournalError> {
        let _span = poc_obs::span!("ctrl.journal.append", event = record.event.label());
        let payload = serde_json::to_vec(record)
            .map_err(|e| JournalError::Io(std::io::Error::other(e.to_string())))?;
        if payload.len() > MAX_RECORD as usize {
            return Err(JournalError::RecordTooLarge(payload.len()));
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);

        if crash.fire_if(CrashPoint::MidAppend) {
            // The process "dies" with only the header and half the
            // payload on disk: exactly the torn tail scan() truncates.
            let keep = RECORD_HEADER + payload.len() / 2;
            self.file.write_all(&frame[..keep])?;
            let _ = self.file.sync_data();
            return Err(JournalError::Crashed(CrashPoint::MidAppend));
        }

        self.file.write_all(&frame)?;
        self.end_pos += frame.len() as u64;
        poc_obs::counter!("ctrl.journal.appends").inc();
        poc_obs::counter!("ctrl.journal.bytes").add(frame.len() as u64);
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(d) => {
                if self.last_sync.elapsed() >= d {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }

        if crash.fire_if(CrashPoint::AfterAppend) {
            // Record durable, reply never sent: the exactly-once case.
            let _ = self.file.sync_data();
            return Err(JournalError::Crashed(CrashPoint::AfterAppend));
        }
        Ok(())
    }

    /// Force a data sync now (shutdown, or an explicit barrier).
    pub fn sync(&mut self) -> std::io::Result<()> {
        let _span = poc_obs::span!("ctrl.journal.fsync");
        self.file.sync_data()?;
        if self.unsynced > 0 {
            poc_obs::counter!("ctrl.journal.fsyncs").inc();
        }
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Truncate to empty after its contents are folded into a durable
    /// snapshot. Plain `set_len(0)` is enough: a crash *before* this
    /// runs leaves already-snapshotted records behind, and recovery
    /// skips them by sequence number.
    pub fn truncate_to_empty(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        self.unsynced = 0;
        self.end_pos = 0;
        Ok(())
    }

    /// Roll the file back to `len` bytes (a frame boundary) after a
    /// failed sync, so bytes whose fsync failed can never be quietly
    /// committed by a later one. The rollback itself is synced; if any
    /// step fails the caller must poison the journal.
    fn rollback_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        self.file.sync_data()?;
        self.end_pos = len;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Current byte length (tests).
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the journal file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

// ---------------------------------------------------------------------------
// Group commit (concurrent append path)
// ---------------------------------------------------------------------------

/// Unlock a possibly-poisoned std mutex guard: a panicking holder must
/// not wedge the commit protocol (mirrors the parking_lot shim).
fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Appender {
    journal: Journal,
    /// Sequence number the next appended record gets.
    next_seq: u64,
}

struct CommitState {
    /// Highest sequence number known durable.
    synced_seq: u64,
    /// Byte length of the durable prefix (the rollback target when a
    /// group-commit fsync fails).
    synced_len: u64,
    /// A commit leader is currently syncing.
    leader: bool,
    /// Completed-batch counter. Parity picks which condvar a batch's
    /// waiters sleep on, so a finishing commit wakes only the waiters
    /// it covered (plus one elected next leader) instead of storming
    /// every thread parked on the journal.
    gen: u64,
    /// Highest seq the in-flight batch covers. `u64::MAX` between
    /// leader election and extent capture (every waiter already
    /// appended by then is covered); meaningless when `leader` is
    /// false.
    target: u64,
    /// When the last group commit (or explicit sync) completed; drives
    /// [`FsyncPolicy::Interval`].
    last_commit: Instant,
    /// Inclusive seq ranges rolled back by failed group commits. Their
    /// waiters must see [`JournalError::BatchAborted`] even after later
    /// (fresh) records push `synced_seq` past them.
    aborted: Vec<(u64, u64)>,
    /// A failed rollback left the on-disk suffix unknowable.
    poisoned: bool,
    /// An armed crash point fired: the simulated process is dead, and
    /// every thread still inside the journal dies with it (no replies,
    /// so every in-flight outcome stays ambiguous — exactly crash
    /// semantics).
    dead: Option<CrashPoint>,
}

/// Concurrent, internally synchronized journal with group commit.
///
/// Appends serialize briefly on the appender lock (a buffered write);
/// durability waits coalesce behind a commit leader: the first waiter
/// to find no leader captures the appended extent, releases the lock,
/// and syncs *everything appended so far* in one `fdatasync` while the
/// next batch accumulates behind it. Under concurrency K records cost
/// ~1 fsync; single-threaded use degenerates to exactly the old
/// one-fsync-per-mutation behavior.
pub struct GroupJournal {
    appender: Mutex<Appender>,
    commit: Mutex<CommitState>,
    /// Two wait queues, indexed by batch-generation parity: waiters
    /// covered by the in-flight batch sleep on `committed[gen % 2]`,
    /// waiters for the *next* batch on the other. Completion then
    /// `notify_all`s only its own queue and `notify_one`s the next
    /// (to elect a leader) — next-batch waiters are not stampeded
    /// awake just to go back to sleep.
    committed: [Condvar; 2],
    policy: FsyncPolicy,
    fault: FsyncFault,
    /// Duplicated handle to the journal file: the leader's `fdatasync`
    /// runs on it without the appender lock, so appends proceed during
    /// the device wait (both handles reach the same kernel inode).
    sync_handle: File,
}

impl GroupJournal {
    /// Open `path` at its scanned `valid_len`. `next_seq` seeds the
    /// sequence counter (recovery's `last_seq + 1`). The inner journal
    /// is opened with [`FsyncPolicy::Never`]: the commit protocol owns
    /// all syncing.
    pub fn open(
        path: &Path,
        valid_len: u64,
        policy: FsyncPolicy,
        next_seq: u64,
        fault: FsyncFault,
    ) -> std::io::Result<Self> {
        let journal = Journal::open(path, valid_len, FsyncPolicy::Never)?;
        let sync_handle = journal.file.try_clone()?;
        Ok(Self {
            appender: Mutex::new(Appender { journal, next_seq }),
            commit: Mutex::new(CommitState {
                synced_seq: next_seq.saturating_sub(1),
                synced_len: valid_len,
                leader: false,
                gen: 0,
                target: 0,
                last_commit: Instant::now(),
                aborted: Vec::new(),
                poisoned: false,
                dead: None,
            }),
            committed: [Condvar::new(), Condvar::new()],
            policy,
            fault,
            sync_handle,
        })
    }

    /// Sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        relock(self.appender.lock()).next_seq
    }

    /// Append one event and return once it is as durable as the policy
    /// demands. Concurrent callers' fsyncs coalesce behind the commit
    /// leader; see the module docs for the failure contract.
    pub fn append(&self, event: JournalEvent, crash: &CrashSwitch) -> Result<u64, JournalError> {
        let seq = {
            let mut ap = relock(self.appender.lock());
            {
                let c = relock(self.commit.lock());
                if let Some(p) = c.dead {
                    return Err(JournalError::Crashed(p));
                }
                if c.poisoned {
                    return Err(JournalError::Poisoned);
                }
            }
            let seq = ap.next_seq;
            match ap.journal.append(&JournalRecord { seq, event }, crash) {
                Ok(()) => {}
                Err(JournalError::Crashed(p)) => {
                    // The simulated process died inside the append. No
                    // record may follow (a MidAppend tear would hide it
                    // from the scanner), and every thread waiting on a
                    // commit dies with the process.
                    relock(self.commit.lock()).dead = Some(p);
                    self.committed[0].notify_all();
                    self.committed[1].notify_all();
                    return Err(JournalError::Crashed(p));
                }
                Err(e) => return Err(e),
            }
            ap.next_seq += 1;
            seq
        };
        match self.policy {
            FsyncPolicy::Always => self.commit(seq)?,
            FsyncPolicy::Interval(d) => {
                let due = relock(self.commit.lock()).last_commit.elapsed() >= d;
                if due {
                    self.commit(seq)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Wait until `seq` is durable, becoming the commit leader if
    /// nobody else is syncing. Returns the typed batch error if the
    /// fsync covering `seq` failed.
    fn commit(&self, seq: u64) -> Result<(), JournalError> {
        let _span = poc_obs::span!("ctrl.journal.group_commit");
        let mut c = relock(self.commit.lock());
        loop {
            if let Some(p) = c.dead {
                return Err(JournalError::Crashed(p));
            }
            if c.poisoned {
                return Err(JournalError::Poisoned);
            }
            if c.aborted.iter().any(|&(lo, hi)| (lo..=hi).contains(&seq)) {
                return Err(JournalError::BatchAborted);
            }
            if c.synced_seq >= seq {
                return Ok(());
            }
            if c.leader {
                // Sleep on the queue for the batch that will cover us:
                // the in-flight one if its captured extent includes our
                // seq, the next one otherwise. Re-evaluated every
                // iteration — `gen` may have advanced while we slept.
                let queue = if seq <= c.target { c.gen % 2 } else { (c.gen + 1) % 2 };
                c = relock(self.committed[queue as usize].wait(c));
                continue;
            }
            // Become the leader. Capture the batch extent under the
            // appender lock, then *release it* for the fsync itself:
            // `fdatasync` persists at least everything written before
            // the call, so the captured extent is safely acknowledged on
            // success, while the next batch accumulates behind the freed
            // lock during the device wait.
            c.leader = true;
            c.target = u64::MAX;
            let (base_seq, base_len) = (c.synced_seq, c.synced_len);
            drop(c);

            let (target_seq, target_len) = {
                let ap = relock(self.appender.lock());
                // Publish the real extent (still under the appender
                // lock, so no append can slip between capture and
                // publication): later arrivals with seq beyond it park
                // on the next batch's queue.
                relock(self.commit.lock()).target = ap.next_seq - 1;
                (ap.next_seq - 1, ap.journal.end_pos)
            };
            let synced = if self.fault.take() {
                Err(std::io::Error::other("injected fsync fault"))
            } else {
                let _span = poc_obs::span!("ctrl.journal.fsync");
                self.sync_handle.sync_data()
            };

            match synced {
                Ok(()) => {
                    poc_obs::counter!("ctrl.journal.fsyncs").inc();
                    poc_obs::counter!("ctrl.journal.group_commits").inc();
                    poc_obs::histogram!("ctrl.journal.batch_size").record(target_seq - base_seq);
                    let mut done = relock(self.commit.lock());
                    done.leader = false;
                    // max-guard: an explicit sync() may have advanced
                    // the durable frontier past this batch meanwhile.
                    done.synced_seq = done.synced_seq.max(target_seq);
                    done.synced_len = done.synced_len.max(target_len);
                    done.last_commit = Instant::now();
                    let gen = done.gen;
                    done.gen = gen.wrapping_add(1);
                    // Wake everyone this batch covered; elect (at most)
                    // one next-batch waiter as the new leader. If the
                    // election notify finds nobody parked yet, the next
                    // arrival self-elects on seeing `leader == false`.
                    self.committed[(gen % 2) as usize].notify_all();
                    self.committed[(gen.wrapping_add(1) % 2) as usize].notify_one();
                    // Loop: our own seq is ≤ target_seq, so the next
                    // check returns Ok.
                    c = done;
                }
                Err(_) => {
                    // The batch's bytes may or may not have reached the
                    // platter. Stop the world (the appender lock waits
                    // out any in-flight append), then roll the file back
                    // to the durable prefix so a later sync can never
                    // quietly commit records whose waiters are about to
                    // be told they failed. Records appended *during* the
                    // failed sync are equally unknowable, so the abort
                    // covers everything up to the rollback point.
                    poc_obs::counter!("ctrl.journal.batch_failures").inc();
                    let mut ap = relock(self.appender.lock());
                    let abort_hi = ap.next_seq - 1;
                    let rolled = ap.journal.rollback_to(base_len);
                    let mut done = relock(self.commit.lock());
                    done.leader = false;
                    done.gen = done.gen.wrapping_add(1);
                    let err = match rolled {
                        Ok(()) => {
                            done.aborted.push((base_seq + 1, abort_hi));
                            JournalError::BatchAborted
                        }
                        Err(_) => {
                            done.poisoned = true;
                            JournalError::Poisoned
                        }
                    };
                    // The abort covers every record up to the rollback
                    // point — including next-batch arrivals — so both
                    // queues must drain and observe it.
                    self.committed[0].notify_all();
                    self.committed[1].notify_all();
                    return Err(err);
                }
            }
        }
    }

    /// Force a sync now (shutdown barrier, or an explicit test
    /// barrier). Single-caller semantics: runs outside the leader
    /// protocol but under both locks, so it composes with it.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut ap = relock(self.appender.lock());
        ap.journal.sync()?;
        let mut c = relock(self.commit.lock());
        c.synced_seq = ap.next_seq - 1;
        c.synced_len = ap.journal.end_pos;
        c.last_commit = Instant::now();
        // The frontier moved outside the leader protocol: drain both
        // queues so covered sleepers re-check it (a group commit only
        // wakes its own batch).
        self.committed[0].notify_all();
        self.committed[1].notify_all();
        Ok(())
    }

    /// Truncate after a checkpoint folded every record into a durable
    /// snapshot. Callers must guarantee no append is in flight (the
    /// server holds every state lock across a checkpoint).
    pub fn truncate_to_empty(&self) -> std::io::Result<()> {
        let mut ap = relock(self.appender.lock());
        ap.journal.truncate_to_empty()?;
        let mut c = relock(self.commit.lock());
        c.synced_seq = ap.next_seq - 1;
        c.synced_len = 0;
        c.last_commit = Instant::now();
        c.aborted.clear();
        self.committed[0].notify_all();
        self.committed[1].notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::RouterId;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poc-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.wal")
    }

    fn rec(seq: u64, event: JournalEvent) -> JournalRecord {
        JournalRecord { seq, event }
    }

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Attach {
                name: "lmp-1".into(),
                role: AttachRole::Lmp { router: RouterId(0) },
            },
            JournalEvent::ReportUsage { entity: EntityId(3), gbps: 12.5 },
            JournalEvent::RunAuction,
            JournalEvent::RecallLink { bp: 1, link: 2, notice_periods: 3 },
            JournalEvent::RunBilling,
        ]
    }

    fn write_all(path: &Path, events: &[JournalEvent]) {
        let mut j = Journal::open(path, 0, FsyncPolicy::Always).unwrap();
        for (i, e) in events.iter().enumerate() {
            j.append(&rec(i as u64 + 1, e.clone()), &CrashSwitch::new()).unwrap();
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_scan_round_trips() {
        let path = tmp("round-trip");
        let events = sample_events();
        write_all(&path, &events);
        let scan = scan(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), events.len());
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.event, events[i]);
        }
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn empty_and_missing_files_recover_cleanly() {
        let path = tmp("empty");
        // Missing file: clean empty scan.
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty() && !s.torn_tail && s.valid_len == 0);
        // Empty file: same.
        std::fs::write(&path, b"").unwrap();
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty() && !s.torn_tail && s.valid_len == 0);
    }

    #[test]
    fn corrupt_crc_truncates_at_the_corrupt_record() {
        let path = tmp("crc");
        let events = sample_events();
        write_all(&path, &events);
        let clean = scan(&path).unwrap();
        // Flip one payload byte inside the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let mut offset = 0usize;
        for _ in 0..2 {
            let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += RECORD_HEADER + len;
        }
        bytes[offset + RECORD_HEADER + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 2, "records before the corrupt one survive");
        assert_eq!(s.records[..], clean.records[..2]);
        assert_eq!(s.valid_len as usize, offset);
    }

    #[test]
    fn truncated_length_prefix_is_a_clean_torn_tail() {
        let path = tmp("torn-prefix");
        let events = sample_events();
        write_all(&path, &events);
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record's header.
        let clean = scan(&path).unwrap();
        let last_start = {
            let mut offset = 0usize;
            for _ in 0..events.len() - 1 {
                let len = u32::from_be_bytes(full[offset..offset + 4].try_into().unwrap()) as usize;
                offset += RECORD_HEADER + len;
            }
            offset
        };
        std::fs::write(&path, &full[..last_start + 3]).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), events.len() - 1);
        assert_eq!(s.valid_len as usize, last_start);
        assert_eq!(s.records[..], clean.records[..events.len() - 1]);
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_a_huge_allocation() {
        let path = tmp("oversize");
        write_all(&path, &sample_events()[..1]);
        let mut bytes = std::fs::read(&path).unwrap();
        let valid = bytes.len();
        bytes.extend_from_slice(&(MAX_RECORD + 1).to_be_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len as usize, valid);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_resume() {
        let path = tmp("resume");
        let events = sample_events();
        write_all(&path, &events);
        // Tear the tail mid-record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);

        // Re-open at the valid prefix and append a fresh record.
        let mut j = Journal::open(&path, s.valid_len, FsyncPolicy::Always).unwrap();
        j.append(&rec(99, JournalEvent::RunAuction), &CrashSwitch::new()).unwrap();
        let s2 = scan(&path).unwrap();
        assert!(!s2.torn_tail, "tail was truncated before appending");
        assert_eq!(s2.records.len(), events.len());
        assert_eq!(s2.records.last().unwrap().seq, 99);
    }

    #[test]
    fn mid_append_crash_leaves_a_truncatable_tail() {
        let path = tmp("crash-mid-append");
        let events = sample_events();
        write_all(&path, &events[..2]);
        let crash = CrashSwitch::new();
        crash.arm(CrashPoint::MidAppend);
        let s0 = scan(&path).unwrap();
        let mut j = Journal::open(&path, s0.valid_len, FsyncPolicy::Always).unwrap();
        let err = j.append(&rec(3, JournalEvent::RunBilling), &crash).unwrap_err();
        assert!(matches!(err, JournalError::Crashed(CrashPoint::MidAppend)), "{err:?}");

        let s = scan(&path).unwrap();
        assert!(s.torn_tail, "half-written record must be detected");
        assert_eq!(s.records.len(), 2, "crashed append must not surface as a record");
    }

    #[test]
    fn truncate_to_empty_resets_the_file() {
        let path = tmp("truncate");
        write_all(&path, &sample_events());
        let s = scan(&path).unwrap();
        let mut j = Journal::open(&path, s.valid_len, FsyncPolicy::Never).unwrap();
        j.truncate_to_empty().unwrap();
        assert!(j.is_empty().unwrap());
        j.append(&rec(7, JournalEvent::RunAuction), &CrashSwitch::new()).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].seq, 7);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(matches!(FsyncPolicy::parse("interval").unwrap(), FsyncPolicy::Interval(_)));
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    /// Strategy for one arbitrary journal event.
    fn event_strategy() -> impl Strategy<Value = JournalEvent> {
        (0u8..10, 0u32..40, 0u32..8, any_gbps()).prop_map(|(kind, a, b, gbps)| match kind {
            0 => JournalEvent::Attach {
                name: format!("member-{a}"),
                role: if a % 2 == 0 {
                    AttachRole::Lmp { router: RouterId(b) }
                } else {
                    AttachRole::DirectCsp { router: RouterId(b) }
                },
            },
            1 => JournalEvent::ReportUsage { entity: EntityId(a), gbps },
            2 => JournalEvent::RunAuction,
            3 => JournalEvent::RunBilling,
            4 => JournalEvent::RecallLink { bp: a % 4, link: b, notice_periods: a % 3 },
            5 => JournalEvent::TransitionBegun {
                max_extra_links: (a % 2 == 0).then_some(b as usize),
                demand_scale: (a % 3 == 0).then_some(1.0 + f64::from(b % 16) / 4.0),
            },
            6 => JournalEvent::TransitionStep { add: a % 2 == 0, link: b },
            7 => JournalEvent::TransitionCommitted,
            8 => JournalEvent::TransitionAborted,
            _ => JournalEvent::ReviewPolicy {
                policy: TrafficPolicy {
                    lmp: EntityId(a),
                    matches: poc_core::tos::PolicyMatch {
                        source: (a % 2 == 0).then_some(EntityId(b)),
                        ..poc_core::tos::PolicyMatch::any()
                    },
                    action: poc_core::tos::PolicyAction::Block,
                    basis: poc_core::tos::PolicyBasis::Commercial,
                },
            },
        })
    }

    fn any_gbps() -> impl Strategy<Value = f64> {
        (0u32..4, 0u32..10_000).prop_map(|(kind, n)| match kind {
            0 => f64::NAN, // non-finite reports are journaled too
            _ => n as f64 / 7.0,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip: any event sequence scans back verbatim, and any
        /// byte-level truncation of the file yields a prefix of the
        /// original records (never garbage, never an error).
        #[test]
        fn journal_round_trip_and_prefix_property(
            events in prop::collection::vec(event_strategy(), 1..12),
            cut_fraction in 0.0f64..1.0,
        ) {
            let path = tmp("prop");
            write_all(&path, &events);
            let full = scan(&path).unwrap();
            prop_assert!(!full.torn_tail);
            prop_assert_eq!(full.records.len(), events.len());
            for (i, r) in full.records.iter().enumerate() {
                // NaN gbps round-trips as NaN (JSON null); compare via
                // serialization to sidestep NaN != NaN.
                prop_assert_eq!(
                    serde_json::to_vec(&r.event).unwrap(),
                    serde_json::to_vec(&events[i]).unwrap()
                );
            }

            // Arbitrary truncation → longest valid prefix.
            let bytes = std::fs::read(&path).unwrap();
            let cut = (bytes.len() as f64 * cut_fraction) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let cut_scan = scan(&path).unwrap();
            prop_assert!(cut_scan.records.len() <= events.len());
            // Compare serialized (NaN-carrying events are not PartialEq
            // to themselves).
            prop_assert_eq!(
                serde_json::to_vec(&cut_scan.records).unwrap(),
                serde_json::to_vec(&full.records[..cut_scan.records.len()].to_vec()).unwrap()
            );
            prop_assert!(cut_scan.valid_len <= cut as u64);
        }
    }
}

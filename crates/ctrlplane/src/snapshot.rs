//! Snapshot checkpoints: the controller's full persistent state,
//! written atomically.
//!
//! A snapshot bounds journal replay: once the state as of sequence
//! number `seq` is durably on disk, every journal record with
//! `seq <= snapshot.seq` is dead weight and the journal can be
//! truncated. Snapshots are written with the classic crash-safe
//! recipe:
//!
//! 1. serialize into `snap-<seq>.snap.tmp`;
//! 2. `fsync` the temp file (contents durable, name not);
//! 3. atomically `rename` to `snap-<seq>.snap`;
//! 4. `fsync` the directory (the rename itself durable);
//! 5. delete generations older than the previous one.
//!
//! A crash between any two steps leaves either the old generation
//! intact (steps 1–3) or both generations intact (4–5) — never a state
//! where the newest *valid* snapshot is worse than what we had. The
//! snapshot payload reuses the journal's `[len][crc][payload]` framing
//! so a torn file at the final name (hostile filesystems, injected
//! faults) is *detected* and skipped rather than trusted, falling back
//! to the previous generation.

use crate::journal::{crc32, CrashPoint, CrashSwitch, RECORD_HEADER};
use poc_core::entity::EntityId;
use poc_core::poc::PocState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Everything the controller must persist, captured at one sequence
/// number under the state lock (so it is a consistent point-in-time
/// cut).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// Sequence number of the last journal event folded in.
    pub seq: u64,
    /// Fingerprint of the topology this state was taken against;
    /// recovery refuses a mismatch.
    pub fingerprint: u64,
    /// The POC facade's persistent state.
    pub poc: PocState,
    /// Usage reported since the last billing cycle.
    pub usage: BTreeMap<EntityId, f64>,
}

/// Errors from the snapshot write path.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    /// An armed [`CrashPoint`] fired mid-write.
    Crashed(CrashPoint),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Crashed(p) => write!(f, "injected crash at {}", p.label()),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.snap"))
}

/// Frame a snapshot exactly like a journal record: length, CRC,
/// payload.
fn frame(snapshot: &ControllerSnapshot) -> std::io::Result<Vec<u8>> {
    let payload = serde_json::to_vec(snapshot).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Parse a framed snapshot file; `None` if torn, corrupt, or
/// unparsable (the caller falls back to an older generation).
fn unframe(bytes: &[u8]) -> Option<ControllerSnapshot> {
    if bytes.len() < RECORD_HEADER {
        return None;
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
    let crc = u32::from_be_bytes(bytes[4..8].try_into().ok()?);
    let payload = bytes.get(RECORD_HEADER..RECORD_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    serde_json::from_slice(payload).ok()
}

/// Write `snapshot` atomically into `dir`. On success the newest valid
/// generation on disk is `snapshot`; on a crash injection the disk is
/// left exactly as a real crash at that point would leave it.
pub fn write_snapshot(
    dir: &Path,
    snapshot: &ControllerSnapshot,
    crash: &CrashSwitch,
) -> Result<(), SnapshotError> {
    let bytes = frame(snapshot)?;
    let final_path = snapshot_path(dir, snapshot.seq);

    if crash.fire_if(CrashPoint::TornSnapshotWrite) {
        // Simulate a filesystem that tore the write at the final name:
        // half the framed bytes, then death. Recovery must detect the
        // bad CRC and fall back.
        let mut f = File::create(&final_path)?;
        f.write_all(&bytes[..bytes.len() / 2])?;
        let _ = f.sync_all();
        return Err(SnapshotError::Crashed(CrashPoint::TornSnapshotWrite));
    }

    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }

    if crash.fire_if(CrashPoint::MidSnapshotRename) {
        // Temp durable, rename never happened: the orphan `.tmp` must
        // be ignored by recovery.
        return Err(SnapshotError::Crashed(CrashPoint::MidSnapshotRename));
    }

    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    poc_obs::counter!("ctrl.snapshot.writes").inc();
    poc_obs::counter!("ctrl.snapshot.bytes").add(bytes.len() as u64);

    // Keep this generation plus one fallback; prune the rest.
    let mut generations = list_generations(dir)?;
    generations.retain(|&(seq, _)| seq != snapshot.seq);
    generations.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    for (_, path) in generations.into_iter().skip(1) {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// All `snap-<seq>.snap` files in `dir` with their parsed sequence
/// numbers (unsorted; `.tmp` orphans are excluded).
fn list_generations(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".snap")) else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else { continue };
        out.push((seq, entry.path()));
    }
    Ok(out)
}

/// Result of loading the newest valid snapshot.
#[derive(Debug, Default)]
pub struct LoadedSnapshot {
    pub snapshot: Option<ControllerSnapshot>,
    /// Newer generations that existed but failed validation (torn or
    /// corrupt) and were skipped.
    pub skipped_invalid: u64,
}

/// Load the newest generation that validates; torn or corrupt newer
/// generations are skipped (and counted), orphan `.tmp` files are
/// removed.
pub fn load_newest(dir: &Path) -> std::io::Result<LoadedSnapshot> {
    // Clear orphan temp files from a crash between write and rename.
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.path().extension().and_then(|e| e.to_str()) == Some("tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    let mut generations = list_generations(dir)?;
    generations.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    let mut skipped = 0u64;
    for (_, path) in generations {
        let bytes = std::fs::read(&path)?;
        if let Some(snapshot) = unframe(&bytes) {
            return Ok(LoadedSnapshot { snapshot: Some(snapshot), skipped_invalid: skipped });
        }
        skipped += 1;
    }
    Ok(LoadedSnapshot { snapshot: None, skipped_invalid: skipped })
}

/// Fsync a directory so a rename inside it is durable (no-op on
/// platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poc-snapshot-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap(seq: u64) -> ControllerSnapshot {
        let mut usage = BTreeMap::new();
        usage.insert(EntityId(4), seq as f64 * 1.5);
        ControllerSnapshot { seq, fingerprint: 0xfeed, poc: PocState::default(), usage }
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp_dir("round-trip");
        write_snapshot(&dir, &snap(3), &CrashSwitch::new()).unwrap();
        let loaded = load_newest(&dir).unwrap();
        let s = loaded.snapshot.unwrap();
        assert_eq!(s.seq, 3);
        assert_eq!(s.fingerprint, 0xfeed);
        assert_eq!(s.usage[&EntityId(4)], 4.5);
        assert_eq!(loaded.skipped_invalid, 0);
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmp_dir("empty");
        let loaded = load_newest(&dir).unwrap();
        assert!(loaded.snapshot.is_none());
    }

    #[test]
    fn newer_generation_wins_and_old_ones_are_pruned() {
        let dir = tmp_dir("generations");
        for seq in [2, 5, 9] {
            write_snapshot(&dir, &snap(seq), &CrashSwitch::new()).unwrap();
        }
        let loaded = load_newest(&dir).unwrap();
        assert_eq!(loaded.snapshot.unwrap().seq, 9);
        // Newest + one fallback survive the prune.
        let mut seqs: Vec<u64> =
            list_generations(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![5, 9]);
    }

    #[test]
    fn torn_newest_generation_falls_back_to_previous() {
        let dir = tmp_dir("torn");
        write_snapshot(&dir, &snap(4), &CrashSwitch::new()).unwrap();
        let crash = CrashSwitch::new();
        crash.arm(CrashPoint::TornSnapshotWrite);
        let err = write_snapshot(&dir, &snap(8), &crash).unwrap_err();
        assert!(matches!(err, SnapshotError::Crashed(CrashPoint::TornSnapshotWrite)));

        let loaded = load_newest(&dir).unwrap();
        assert_eq!(loaded.snapshot.unwrap().seq, 4, "fell back past the torn generation");
        assert_eq!(loaded.skipped_invalid, 1);
    }

    #[test]
    fn crash_before_rename_leaves_previous_generation_live() {
        let dir = tmp_dir("mid-rename");
        write_snapshot(&dir, &snap(4), &CrashSwitch::new()).unwrap();
        let crash = CrashSwitch::new();
        crash.arm(CrashPoint::MidSnapshotRename);
        let err = write_snapshot(&dir, &snap(8), &crash).unwrap_err();
        assert!(matches!(err, SnapshotError::Crashed(CrashPoint::MidSnapshotRename)));

        let loaded = load_newest(&dir).unwrap();
        assert_eq!(loaded.snapshot.unwrap().seq, 4);
        assert_eq!(loaded.skipped_invalid, 0, "orphan tmp is not a generation");
        // The orphan tmp was cleaned up by the load.
        let tmps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().extension().and_then(|x| x.to_str()) == Some("tmp")
            })
            .collect();
        assert!(tmps.is_empty());
    }

    #[test]
    fn garbage_snapshot_file_is_skipped() {
        let dir = tmp_dir("garbage");
        write_snapshot(&dir, &snap(2), &CrashSwitch::new()).unwrap();
        std::fs::write(dir.join("snap-00000000000000000009.snap"), b"not a snapshot").unwrap();
        let loaded = load_newest(&dir).unwrap();
        assert_eq!(loaded.snapshot.unwrap().seq, 2);
        assert_eq!(loaded.skipped_invalid, 1);
    }
}

//! Length-prefixed JSON framing.
//!
//! Each frame: 4-byte big-endian payload length, then that many bytes of
//! JSON. A hard size cap protects the server from a malicious or broken
//! peer declaring a multi-gigabyte frame.

use bytes::{BufMut, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Maximum accepted frame payload (1 MiB — control-plane messages are
/// small; anything bigger is a protocol error).
pub const MAX_FRAME: u32 = 1 << 20;

/// Framing/serialization errors.
#[derive(Debug)]
pub enum CodecError {
    Io(std::io::Error),
    FrameTooLarge(u32),
    Json(serde_json::Error),
    /// Clean EOF between frames (peer hung up).
    Closed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io: {e}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            CodecError::Json(e) => write!(f, "json: {e}"),
            CodecError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> Self {
        CodecError::Json(e)
    }
}

/// Write one frame.
pub async fn write_frame<W, T>(writer: &mut W, msg: &T) -> Result<(), CodecError>
where
    W: AsyncWrite + Unpin,
    T: Serialize,
{
    let payload = serde_json::to_vec(msg)?;
    let len = u32::try_from(payload.len()).map_err(|_| CodecError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(len);
    buf.put_slice(&payload);
    writer.write_all(&buf).await?;
    writer.flush().await?;
    Ok(())
}

/// Read one frame. Returns [`CodecError::Closed`] on clean EOF at a frame
/// boundary.
pub async fn read_frame<R, T>(reader: &mut R) -> Result<T, CodecError>
where
    R: AsyncRead + Unpin,
    T: DeserializeOwned,
{
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(CodecError::Closed)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).await?;
    Ok(serde_json::from_slice(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, Response};
    use poc_core::entity::EntityId;

    #[tokio::test]
    async fn frame_round_trip() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        write_frame(&mut a, &Request::Ping).await.unwrap();
        let got: Request = read_frame(&mut b).await.unwrap();
        assert_eq!(got, Request::Ping);
    }

    #[tokio::test]
    async fn multiple_frames_in_order() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        write_frame(&mut a, &Response::Pong).await.unwrap();
        write_frame(&mut a, &Response::Welcome { entity: EntityId(3) }).await.unwrap();
        let r1: Response = read_frame(&mut b).await.unwrap();
        let r2: Response = read_frame(&mut b).await.unwrap();
        assert_eq!(r1, Response::Pong);
        assert_eq!(r2, Response::Welcome { entity: EntityId(3) });
    }

    #[tokio::test]
    async fn eof_reports_closed() {
        let (a, mut b) = tokio::io::duplex(64);
        drop(a);
        let err = read_frame::<_, Request>(&mut b).await.unwrap_err();
        assert!(matches!(err, CodecError::Closed), "{err:?}");
    }

    #[tokio::test]
    async fn oversized_frame_rejected() {
        let (mut a, mut b) = tokio::io::duplex(64);
        // Hand-craft a bogus length prefix.
        use tokio::io::AsyncWriteExt;
        a.write_all(&(MAX_FRAME + 1).to_be_bytes()).await.unwrap();
        let err = read_frame::<_, Request>(&mut b).await.unwrap_err();
        assert!(matches!(err, CodecError::FrameTooLarge(_)), "{err:?}");
    }

    #[tokio::test]
    async fn garbage_json_rejected() {
        let (mut a, mut b) = tokio::io::duplex(64);
        use tokio::io::AsyncWriteExt;
        a.write_all(&5u32.to_be_bytes()).await.unwrap();
        a.write_all(b"hello").await.unwrap();
        let err = read_frame::<_, Request>(&mut b).await.unwrap_err();
        assert!(matches!(err, CodecError::Json(_)), "{err:?}");
    }
}

//! Length-prefixed JSON framing.
//!
//! Each frame: 4-byte big-endian payload length, then that many bytes of
//! JSON. A hard size cap protects the server from a malicious or broken
//! peer declaring a multi-gigabyte frame. Framing is synchronous over any
//! [`std::io::Read`]/[`std::io::Write`]; the server gives each connection
//! its own thread, so blocking reads are the natural model.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Maximum accepted frame payload (1 MiB — control-plane messages are
/// small; anything bigger is a protocol error).
pub const MAX_FRAME: u32 = 1 << 20;

/// Framing/serialization errors.
#[derive(Debug)]
pub enum CodecError {
    Io(std::io::Error),
    FrameTooLarge(u32),
    Json(serde_json::Error),
    /// Clean EOF between frames (peer hung up).
    Closed,
    /// A read or write deadline expired mid-operation. Framing state is
    /// unrecoverable after this (partial bytes may have moved), so the
    /// connection must be abandoned, not resumed.
    TimedOut,
}

impl CodecError {
    /// Transport-level failure (as opposed to a malformed message): the
    /// peer or the network is at fault and a fresh connection may
    /// succeed. This is the client retry layer's "retryable" predicate.
    pub fn is_transport(&self) -> bool {
        matches!(self, CodecError::Io(_) | CodecError::Closed | CodecError::TimedOut)
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io: {e}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            CodecError::Json(e) => write!(f, "json: {e}"),
            CodecError::Closed => write!(f, "connection closed"),
            CodecError::TimedOut => write!(f, "deadline expired mid-frame"),
        }
    }
}

impl std::error::Error for CodecError {}

/// `true` for the error kinds a socket read/write deadline surfaces as
/// (`SO_RCVTIMEO`/`SO_SNDTIMEO` report `WouldBlock` on Unix, `TimedOut`
/// on Windows).
pub fn is_io_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        if is_io_timeout(&e) {
            CodecError::TimedOut
        } else {
            CodecError::Io(e)
        }
    }
}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> Self {
        CodecError::Json(e)
    }
}

/// Write one frame.
pub fn write_frame<W, T>(writer: &mut W, msg: &T) -> Result<(), CodecError>
where
    W: Write,
    T: Serialize,
{
    let payload = serde_json::to_vec(msg)?;
    let len = u32::try_from(payload.len()).map_err(|_| CodecError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&payload);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Read one frame. Returns [`CodecError::Closed`] on clean EOF at a frame
/// boundary.
pub fn read_frame<R, T>(reader: &mut R) -> Result<T, CodecError>
where
    R: Read,
    T: DeserializeOwned,
{
    let mut len_buf = [0u8; 4];
    match reader.read_exact(&mut len_buf) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(CodecError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(serde_json::from_slice(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, Response};
    use poc_core::entity::EntityId;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping).unwrap();
        let got: Request = read_frame(&mut Cursor::new(wire)).unwrap();
        assert_eq!(got, Request::Ping);
    }

    #[test]
    fn multiple_frames_in_order() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Response::Pong).unwrap();
        write_frame(&mut wire, &Response::Welcome { entity: EntityId(3) }).unwrap();
        let mut cursor = Cursor::new(wire);
        let r1: Response = read_frame(&mut cursor).unwrap();
        let r2: Response = read_frame(&mut cursor).unwrap();
        assert_eq!(r1, Response::Pong);
        assert_eq!(r2, Response::Welcome { entity: EntityId(3) });
    }

    #[test]
    fn eof_reports_closed() {
        let err = read_frame::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
        assert!(matches!(err, CodecError::Closed), "{err:?}");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping).unwrap();
        wire.truncate(wire.len() - 1);
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "{err:?}");
    }

    #[test]
    fn oversized_frame_rejected() {
        // Hand-craft a bogus length prefix.
        let wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::FrameTooLarge(_)), "{err:?}");
    }

    #[test]
    fn io_timeout_is_typed() {
        struct StallingReader;
        impl Read for StallingReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "deadline"))
            }
        }
        let err = read_frame::<_, Request>(&mut StallingReader).unwrap_err();
        assert!(matches!(err, CodecError::TimedOut), "{err:?}");
        assert!(err.is_transport());
    }

    #[test]
    fn garbage_json_rejected() {
        let mut wire = 5u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"hello");
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::Json(_)), "{err:?}");
    }
}

//! Deterministic fault injection for control-plane tests.
//!
//! [`FaultyTransport`] wraps any `Read + Write` transport and corrupts
//! *outgoing frames* according to a script or a seeded random profile
//! (the in-tree `rand` shim, so every run of a given seed injects the
//! same fault sequence). It understands the codec's framing — each
//! `write` call from [`crate::codec::write_frame`] carries exactly one
//! `[4-byte length][payload]` frame — so faults can surgically target
//! the length prefix, the payload, or the frame boundary:
//!
//! * [`Fault::Passthrough`] — forward unchanged;
//! * [`Fault::Delay`] — sleep, then forward (slow peer);
//! * [`Fault::TruncateMidFrame`] — forward the prefix and half the
//!   payload, then report success (slowloris half-frame: the server
//!   waits on bytes that never come);
//! * [`Fault::GarbagePayload`] — valid prefix, scrambled payload (JSON
//!   parse failure server-side);
//! * [`Fault::OversizedPrefix`] — a length prefix over
//!   [`crate::codec::MAX_FRAME`] (protocol violation, connection-fatal);
//! * [`Fault::Drop`] — swallow the frame and fail with `BrokenPipe`
//!   (connection torn down mid-request).
//!
//! This module ships in the library (integration tests cannot see
//! `#[cfg(test)]` items) but is a **test harness**: production code must
//! not construct a `FaultyTransport`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::time::Duration;

/// One injected fault, applied to the next outgoing frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    Passthrough,
    Delay(Duration),
    TruncateMidFrame,
    GarbagePayload,
    OversizedPrefix,
    Drop,
}

impl Fault {
    /// Short label for logs and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Passthrough => "passthrough",
            Fault::Delay(_) => "delay",
            Fault::TruncateMidFrame => "truncate",
            Fault::GarbagePayload => "garbage",
            Fault::OversizedPrefix => "oversize",
            Fault::Drop => "drop",
        }
    }
}

/// Per-frame fault probabilities for random mode. Probabilities are
/// evaluated in field order; the remainder passes through.
#[derive(Clone, Debug)]
pub struct FaultProfile {
    pub p_delay: f64,
    pub p_truncate: f64,
    pub p_garbage: f64,
    pub p_oversize: f64,
    pub p_drop: f64,
    /// Upper bound for random delays.
    pub max_delay: Duration,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            p_delay: 0.1,
            p_truncate: 0.1,
            p_garbage: 0.1,
            p_oversize: 0.05,
            p_drop: 0.1,
            max_delay: Duration::from_millis(20),
        }
    }
}

enum Mode {
    /// Fixed fault sequence; exhausted script passes frames through.
    Script(VecDeque<Fault>),
    /// Seeded random faults drawn per frame.
    Random { rng: ChaCha8Rng, profile: FaultProfile },
}

/// A `Read + Write` wrapper that injects faults into outgoing frames.
/// Reads pass through untouched (the interesting failures are what the
/// *server* receives; the client side observes the fallout as transport
/// errors).
pub struct FaultyTransport<T: Read + Write> {
    inner: T,
    mode: Mode,
    injected: Vec<&'static str>,
}

impl<T: Read + Write> FaultyTransport<T> {
    /// Apply `script` to successive frames, then pass through.
    pub fn scripted(inner: T, script: impl IntoIterator<Item = Fault>) -> Self {
        Self { inner, mode: Mode::Script(script.into_iter().collect()), injected: Vec::new() }
    }

    /// Draw one fault per frame from `profile`, deterministically from
    /// `seed`.
    pub fn random(inner: T, seed: u64, profile: FaultProfile) -> Self {
        Self {
            inner,
            mode: Mode::Random { rng: ChaCha8Rng::seed_from_u64(seed), profile },
            injected: Vec::new(),
        }
    }

    /// Labels of the faults injected so far, in order (including
    /// `"passthrough"` frames).
    pub fn injected(&self) -> &[&'static str] {
        &self.injected
    }

    /// The wrapped transport (e.g. to keep a socket open after a
    /// truncated write, stalling the peer).
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn next_fault(&mut self) -> Fault {
        match &mut self.mode {
            Mode::Script(script) => script.pop_front().unwrap_or(Fault::Passthrough),
            Mode::Random { rng, profile } => {
                if rng.gen_bool(profile.p_delay) {
                    let ns = rng.gen_range(0..profile.max_delay.as_nanos().max(1) as u64);
                    Fault::Delay(Duration::from_nanos(ns))
                } else if rng.gen_bool(profile.p_truncate) {
                    Fault::TruncateMidFrame
                } else if rng.gen_bool(profile.p_garbage) {
                    Fault::GarbagePayload
                } else if rng.gen_bool(profile.p_oversize) {
                    Fault::OversizedPrefix
                } else if rng.gen_bool(profile.p_drop) {
                    Fault::Drop
                } else {
                    Fault::Passthrough
                }
            }
        }
    }

    /// Apply `fault` to one full frame in `buf`. Returns the byte count
    /// to report to the codec (always `buf.len()` on success so the
    /// codec believes the frame left intact).
    fn write_faulty(&mut self, buf: &[u8], fault: Fault) -> std::io::Result<usize> {
        match fault {
            Fault::Passthrough => {
                self.inner.write_all(buf)?;
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write_all(buf)?;
            }
            Fault::TruncateMidFrame => {
                // Prefix plus half the payload: the receiver's framing
                // now waits for bytes that never arrive.
                let keep = 4 + (buf.len() - 4) / 2;
                self.inner.write_all(&buf[..keep])?;
                self.inner.flush()?;
            }
            Fault::GarbagePayload => {
                let mut corrupted = buf.to_vec();
                for (i, b) in corrupted[4..].iter_mut().enumerate() {
                    // Printable garbage that is never valid JSON.
                    *b = b"#?!*"[i % 4];
                }
                self.inner.write_all(&corrupted)?;
            }
            Fault::OversizedPrefix => {
                let bogus = (crate::codec::MAX_FRAME + 1).to_be_bytes();
                self.inner.write_all(&bogus)?;
                self.inner.flush()?;
            }
            Fault::Drop => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected connection drop",
                ));
            }
        }
        Ok(buf.len())
    }
}

impl<T: Read + Write> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<T: Read + Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Writes shorter than a length prefix are not frames (the codec
        // never produces them); pass through untouched.
        if buf.len() < 4 {
            return self.inner.write(buf);
        }
        let fault = self.next_fault();
        self.injected.push(fault.label());
        self.write_faulty(buf, fault)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_frame, write_frame, CodecError, MAX_FRAME};
    use crate::proto::Request;
    use std::io::Cursor;

    /// In-memory sink standing in for a socket.
    #[derive(Default)]
    struct Sink(Vec<u8>);
    impl Read for Sink {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Ok(0)
        }
    }
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn frame_of(req: &Request) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, req).unwrap();
        wire
    }

    #[test]
    fn passthrough_preserves_frames() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::Passthrough]);
        write_frame(&mut t, &Request::Ping).unwrap();
        assert_eq!(t.injected(), ["passthrough"]);
        assert_eq!(t.into_inner().0, frame_of(&Request::Ping));
    }

    #[test]
    fn truncate_emits_prefix_and_half_payload() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::TruncateMidFrame]);
        write_frame(&mut t, &Request::Ping).unwrap();
        let full = frame_of(&Request::Ping);
        let wire = t.into_inner().0;
        assert_eq!(wire.len(), 4 + (full.len() - 4) / 2);
        assert_eq!(wire[..], full[..wire.len()], "truncated wire is a prefix of the real frame");
        // The receiver sees an unfinished frame: read_exact hits EOF
        // inside the payload → Io error, not a clean Closed.
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "{err:?}");
    }

    #[test]
    fn garbage_keeps_length_but_breaks_json() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::GarbagePayload]);
        write_frame(&mut t, &Request::Ping).unwrap();
        let full = frame_of(&Request::Ping);
        let wire = t.into_inner().0;
        assert_eq!(wire.len(), full.len());
        assert_eq!(wire[..4], full[..4], "length prefix intact");
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::Json(_)), "{err:?}");
    }

    #[test]
    fn oversized_prefix_trips_the_cap() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::OversizedPrefix]);
        write_frame(&mut t, &Request::Ping).unwrap();
        let wire = t.into_inner().0;
        assert_eq!(wire, (MAX_FRAME + 1).to_be_bytes().to_vec());
        let err = read_frame::<_, Request>(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::FrameTooLarge(_)), "{err:?}");
    }

    #[test]
    fn drop_fails_the_write_and_swallows_the_frame() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::Drop]);
        let err = write_frame(&mut t, &Request::Ping).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "{err:?}");
        assert!(t.into_inner().0.is_empty(), "no bytes escape a dropped frame");
    }

    #[test]
    fn exhausted_script_passes_through() {
        let mut t = FaultyTransport::scripted(Sink::default(), [Fault::GarbagePayload]);
        write_frame(&mut t, &Request::Ping).unwrap();
        write_frame(&mut t, &Request::Ping).unwrap();
        assert_eq!(t.injected(), ["garbage", "passthrough"]);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut t = FaultyTransport::random(Sink::default(), seed, FaultProfile::default());
            for _ in 0..32 {
                let _ = write_frame(&mut t, &Request::Ping);
            }
            t.injected().to_vec()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seeds diverge");
        // The default profile actually exercises multiple fault kinds.
        let labels = run(42);
        let distinct: std::collections::BTreeSet<_> = labels.iter().collect();
        assert!(distinct.len() >= 3, "profile too tame: {distinct:?}");
    }
}

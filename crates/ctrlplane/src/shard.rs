//! Entity-sharded controller state.
//!
//! The hot mutation under production fanout is `ReportUsage`: thousands
//! of members streaming usage reports between (rare) auction and
//! billing rounds. Sharding the usage ledger by entity lets those
//! reports proceed in parallel — each report takes exactly one shard
//! lock — while the rare global operations (attach, auction, billing,
//! recall, policy review) serialize on the global lock, taking shard
//! locks as needed.
//!
//! # Lock order
//!
//! `global` < `shards[0]` < `shards[1]` < … — always. A thread holding
//! a shard lock never acquires the global lock or a lower-index shard
//! lock, which makes deadlock impossible by construction.
//! [`ShardedState::lock_all`] is the only multi-lock path and acquires
//! in exactly that order.
//!
//! # Determinism
//!
//! Replay correctness requires that journal sequence order agrees with
//! state application order wherever two events touch the same state.
//! The server guarantees it by journaling *under the same locks* it
//! applies under: a usage report appends and applies inside its shard's
//! critical section; a global mutation appends and applies while
//! holding the global lock (plus every shard lock when it reads or
//! writes usage — billing drains it, attach inserts authorization). Two
//! critical sections on the same lock are totally ordered, so their
//! sequence numbers and their state effects order identically.
//!
//! # Authorization cache
//!
//! `ReportUsage` validation needs `Registry::may_send_traffic`, which
//! lives behind the global lock. That verdict is fixed at attach time
//! (LMPs and direct CSPs sign the ToS as part of attaching; a hosted
//! CSP rides its — already attached and signed — LMP), so each shard
//! caches the authorized entities that hash to it and usage validation
//! never touches the global lock.

use parking_lot::{Mutex, MutexGuard};
use poc_core::entity::EntityId;
use poc_core::poc::Poc;
use poc_traffic::TrafficMatrix;
use std::collections::{BTreeMap, BTreeSet};

/// State owned by the global lock: the POC core (registry, ledger,
/// lease book, fabric, last outcome) and the auction traffic matrix.
pub(crate) struct Global {
    pub poc: Poc,
    /// Upper-bound traffic matrix for auction rounds.
    pub tm: TrafficMatrix,
    /// Summary of the last finished lease transition (in-memory only;
    /// a restart resets it unless recovery itself finishes one).
    pub last_transition: Option<crate::proto::TransitionSummary>,
}

/// One shard of the usage ledger.
#[derive(Default)]
pub(crate) struct UsageShard {
    /// Usage reported since the last billing cycle by entities that
    /// hash to this shard.
    pub usage: BTreeMap<EntityId, f64>,
    /// Entities on this shard allowed to send traffic (see the module
    /// docs for why this cache is sound).
    pub authorized: BTreeSet<EntityId>,
}

/// The sharded controller state. See the module docs for the lock
/// order and the determinism argument.
pub(crate) struct ShardedState {
    pub global: Mutex<Global>,
    shards: Vec<Mutex<UsageShard>>,
}

impl ShardedState {
    /// Build with `n_shards` usage shards (clamped to ≥ 1), seeding the
    /// authorization cache from entities already attached to `poc`.
    pub fn new(poc: Poc, tm: TrafficMatrix, n_shards: usize) -> Self {
        let shards: Vec<Mutex<UsageShard>> =
            (0..n_shards.max(1)).map(|_| Mutex::new(UsageShard::default())).collect();
        let state = Self { global: Mutex::new(Global { poc, tm, last_transition: None }), shards };
        {
            let g = state.global.lock();
            for entity in g.poc.registry().iter() {
                if g.poc.registry().may_send_traffic(entity.id) {
                    state.shard(entity.id).lock().authorized.insert(entity.id);
                }
            }
        }
        state
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index an entity's usage lives on.
    pub fn shard_index(&self, entity: EntityId) -> usize {
        entity.0 as usize % self.shards.len()
    }

    /// The shard an entity's usage lives on.
    pub fn shard(&self, entity: EntityId) -> &Mutex<UsageShard> {
        &self.shards[self.shard_index(entity)]
    }

    /// Acquire the global lock and every shard lock, in lock order.
    /// Excludes every concurrent mutation: this is the checkpoint /
    /// billing / attach path.
    pub fn lock_all(&self) -> (MutexGuard<'_, Global>, Vec<MutexGuard<'_, UsageShard>>) {
        let global = self.global.lock();
        let shards = self.shards.iter().map(|s| s.lock()).collect();
        (global, shards)
    }
}

/// Merge per-shard usage into one map (shards partition entities, so
/// the union is disjoint). Callers pass the guards from
/// [`ShardedState::lock_all`].
pub(crate) fn merged_usage(shards: &[MutexGuard<'_, UsageShard>]) -> BTreeMap<EntityId, f64> {
    let mut merged = BTreeMap::new();
    for shard in shards {
        merged.extend(shard.usage.iter().map(|(&e, &g)| (e, g)));
    }
    merged
}

/// Scatter a recovered usage map into the shards it partitions onto
/// (snapshot restore).
pub(crate) fn restore_usage(
    shards: &mut [MutexGuard<'_, UsageShard>],
    usage: BTreeMap<EntityId, f64>,
) {
    let n = shards.len();
    for (entity, gbps) in usage {
        shards[entity.0 as usize % n].usage.insert(entity, gbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_core::poc::PocConfig;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn poc_with_members() -> (Poc, EntityId, EntityId) {
        let mut poc = Poc::new(two_bp_square(), PocConfig::default());
        let lmp = poc.attach_lmp("lmp", RouterId(0)).unwrap();
        let csp = poc.attach_hosted_csp("csp", lmp).unwrap();
        (poc, lmp, csp)
    }

    #[test]
    fn new_seeds_authorization_from_attached_entities() {
        let (poc, lmp, csp) = poc_with_members();
        let tm = TrafficMatrix::zero(poc.topo().n_routers());
        let state = ShardedState::new(poc, tm, 4);
        assert!(state.shard(lmp).lock().authorized.contains(&lmp));
        assert!(state.shard(csp).lock().authorized.contains(&csp), "hosted CSP rides its LMP");
    }

    #[test]
    fn usage_partitions_and_merges_back() {
        let (poc, _, _) = poc_with_members();
        let tm = TrafficMatrix::zero(poc.topo().n_routers());
        let state = ShardedState::new(poc, tm, 3);
        let mut usage = BTreeMap::new();
        for i in 0..10u32 {
            usage.insert(EntityId(i), i as f64);
        }
        {
            let (_g, mut shards) = state.lock_all();
            restore_usage(&mut shards, usage.clone());
            for (i, shard) in shards.iter().enumerate() {
                for e in shard.usage.keys() {
                    assert_eq!(e.0 as usize % 3, i, "usage on the wrong shard");
                }
            }
            assert_eq!(merged_usage(&shards), usage);
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (poc, _, _) = poc_with_members();
        let tm = TrafficMatrix::zero(poc.topo().n_routers());
        let state = ShardedState::new(poc, tm, 0);
        assert_eq!(state.n_shards(), 1);
    }
}

//! Typed blocking client for the POC control plane.
//!
//! Every socket operation runs under a deadline ([`ClientConfig`]): a
//! dead or wedged controller surfaces as [`ClientError::TimedOut`]
//! instead of parking the caller forever. Idempotent requests
//! (`Ping`/`Get*`/`Metrics` — see [`Request::is_idempotent`]) are
//! additionally retried through an automatic reconnect loop with capped
//! exponential backoff and deterministic jitter ([`RetryPolicy`]);
//! mutating requests (`RunAuction`, `ReportUsage`, ...) are never
//! replayed after a *transport* failure, because a lost response leaves
//! the mutation ambiguous. A [`crate::proto::Response::Busy`] answer is
//! different: the server sheds the request at admission, before
//! journaling or applying anything, so the client retries it for every
//! request type — mutations included — honouring the server's
//! `retry_after_ms` hint.

use crate::codec::{read_frame, write_frame, CodecError};
use crate::proto::{AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response};
use poc_core::entity::EntityId;
use poc_core::tos::{TrafficPolicy, Verdict};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::TcpStream;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Codec(CodecError),
    /// The server answered `Error { .. }`.
    Server(String),
    /// The server answered with an unexpected variant.
    Protocol(String),
    /// A connect/read/write deadline expired (and, for idempotent
    /// requests, every retry budgeted by the [`RetryPolicy`] was spent).
    TimedOut,
    /// The server shed this request at admission (`Response::Busy`) and
    /// every budgeted retry met the same answer. Nothing was journaled
    /// or applied server-side, so resending later is always safe.
    Busy {
        retry_after_ms: u64,
    },
}

impl ClientError {
    /// Transport-level failure: a reconnect may succeed where this
    /// attempt failed. `Server` and `Protocol` answers are *from* the
    /// controller — retrying would re-ask a question that was answered.
    /// `Busy` is retryable too, but handled separately in [`PocClient`]:
    /// it is safe to resend even for mutations (the server rejected it
    /// before journaling) and needs no reconnect.
    fn is_retryable(&self) -> bool {
        match self {
            ClientError::Codec(c) => c.is_transport(),
            ClientError::TimedOut => true,
            ClientError::Busy { .. } => true,
            ClientError::Server(_) | ClientError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::TimedOut => write!(f, "deadline expired"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::TimedOut => ClientError::TimedOut,
            other => ClientError::Codec(other),
        }
    }
}

/// Reconnect-and-retry policy for idempotent requests.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`RetryPolicy::max_backoff`], scaled by jitter in `[0.5, 1.0)`.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed for the jitter stream (the in-tree `rand` shim), so a test
    /// run's retry schedule is reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x90c_0b5e,
        }
    }
}

/// Deadlines and retry policy for a [`PocClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    pub connect_timeout: Duration,
    /// Read deadline per response. Covers the server-side handling time
    /// too (an auction round computes under this deadline), so keep it
    /// comfortably above the slowest expected request.
    pub read_timeout: Duration,
    pub write_timeout: Duration,
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
        }
    }
}

impl ClientConfig {
    /// No retries; deadlines only.
    pub fn no_retry(mut self) -> Self {
        self.retry.max_retries = 0;
        self
    }
}

/// A connection to the POC controller.
pub struct PocClient {
    stream: TcpStream,
    /// Buffered view of the same socket (`try_clone`d fd) for response
    /// reads: length prefix and payload almost always arrive together,
    /// so a response costs one `read(2)` instead of two. Rebuilt on
    /// reconnect so stale bytes from a dead connection never leak in.
    reader: std::io::BufReader<TcpStream>,
    addr: std::net::SocketAddr,
    config: ClientConfig,
    jitter: ChaCha8Rng,
    /// When set, every request ships inside a `Request::Traced`
    /// envelope carrying this id (see [`PocClient::set_trace`]).
    trace_id: Option<u64>,
}

impl PocClient {
    /// Connect with default deadlines and retry policy.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit deadlines and retry policy.
    pub fn connect_with(addr: std::net::SocketAddr, config: ClientConfig) -> std::io::Result<Self> {
        let stream = Self::open(addr, &config)?;
        let reader = std::io::BufReader::with_capacity(4096, stream.try_clone()?);
        let jitter = ChaCha8Rng::seed_from_u64(config.retry.jitter_seed);
        Ok(Self { stream, reader, addr, config, jitter, trace_id: None })
    }

    /// Tag every subsequent request with `trace_id` (server-side span
    /// trees root at it; scrape them back with [`PocClient::traces`]).
    /// `None` turns tagging back off. The envelope is transparent to
    /// retry policy: a traced mutation still never retries.
    pub fn set_trace(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    fn open(addr: std::net::SocketAddr, config: &ClientConfig) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        Ok(stream)
    }

    /// Fault-injection hook: sever the underlying connection without the
    /// client noticing, as a mid-session network drop would. The next
    /// request fails at the transport layer (and, if idempotent,
    /// recovers through the retry loop). Test harness use only.
    #[doc(hidden)]
    pub fn inject_disconnect(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn call(&mut self, req: Request) -> Result<Response, ClientError> {
        let req = match self.trace_id {
            Some(trace_id) => Request::Traced { trace_id, request: Box::new(req) },
            None => req,
        };
        let mut attempt: u32 = 0;
        loop {
            match self.call_once(&req) {
                Ok(resp) => return Ok(resp),
                // Admission backpressure: the server rejected the
                // request *before* journaling or applying anything, so
                // a resend is safe even for mutations. The connection
                // is fine — no reconnect, just wait out the hint (or
                // the backoff, whichever is longer).
                Err(ClientError::Busy { retry_after_ms })
                    if attempt < self.config.retry.max_retries =>
                {
                    attempt += 1;
                    poc_obs::counter!("ctrl.client.busy").inc();
                    std::thread::sleep(
                        self.backoff(attempt).max(Duration::from_millis(retry_after_ms)),
                    );
                }
                Err(e)
                    if e.is_retryable()
                        && req.is_idempotent()
                        && attempt < self.config.retry.max_retries =>
                {
                    attempt += 1;
                    if matches!(e, ClientError::TimedOut) {
                        poc_obs::counter!("ctrl.client.timeouts").inc();
                    }
                    poc_obs::counter!("ctrl.client.retries").inc();
                    std::thread::sleep(self.backoff(attempt));
                    // Reconnect; if that fails, the next call_once fails
                    // at write and either retries again or surfaces.
                    if let Ok(stream) = Self::open(self.addr, &self.config) {
                        if let Ok(clone) = stream.try_clone() {
                            self.stream = stream;
                            self.reader = std::io::BufReader::with_capacity(4096, clone);
                        }
                    }
                }
                Err(ClientError::TimedOut) => {
                    poc_obs::counter!("ctrl.client.timeouts").inc();
                    return Err(ClientError::TimedOut);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn call_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, req)?;
        let resp: Response = read_frame(&mut self.reader)?;
        match resp {
            Response::Error { message } => Err(ClientError::Server(message)),
            Response::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            other => Ok(other),
        }
    }

    fn backoff(&mut self, attempt: u32) -> Duration {
        backoff_delay(&self.config.retry, attempt, &mut self.jitter)
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Attach and return the assigned entity id.
    pub fn attach(&mut self, name: &str, role: AttachRole) -> Result<EntityId, ClientError> {
        match self.call(Request::Attach { name: name.into(), role })? {
            Response::Welcome { entity } => Ok(entity),
            other => Err(ClientError::Protocol(format!("expected Welcome, got {other:?}"))),
        }
    }

    pub fn run_auction(&mut self) -> Result<OutcomeSummary, ClientError> {
        match self.call(Request::RunAuction)? {
            Response::AuctionDone(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected AuctionDone, got {other:?}"))),
        }
    }

    pub fn outcome(&mut self) -> Result<Option<OutcomeSummary>, ClientError> {
        match self.call(Request::GetOutcome)? {
            Response::Outcome(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected Outcome, got {other:?}"))),
        }
    }

    pub fn report_usage(&mut self, entity: EntityId, gbps: f64) -> Result<(), ClientError> {
        match self.call(Request::ReportUsage { entity, gbps })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ack, got {other:?}"))),
        }
    }

    /// Report usage for many entities in one pipelined burst — the shape a
    /// data-plane meter produces (one number per owner per period). Stops
    /// at the first failure; earlier reports stay applied, matching the
    /// server's per-request semantics.
    pub fn report_usage_batch(&mut self, usage: &[(EntityId, f64)]) -> Result<(), ClientError> {
        for &(entity, gbps) in usage {
            self.report_usage(entity, gbps)?;
        }
        Ok(())
    }

    pub fn run_billing(&mut self) -> Result<BillingSummaryWire, ClientError> {
        match self.call(Request::RunBilling)? {
            Response::BillingDone(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected BillingDone, got {other:?}"))),
        }
    }

    pub fn balance(&mut self, entity: EntityId) -> Result<f64, ClientError> {
        match self.call(Request::GetBalance { entity })? {
            Response::Balance { balance, .. } => Ok(balance),
            other => Err(ClientError::Protocol(format!("expected Balance, got {other:?}"))),
        }
    }

    pub fn review_policy(&mut self, policy: TrafficPolicy) -> Result<Verdict, ClientError> {
        match self.call(Request::ReviewPolicy { policy })? {
            Response::PolicyVerdict(v) => Ok(v),
            other => Err(ClientError::Protocol(format!("expected Verdict, got {other:?}"))),
        }
    }

    /// Recall a leased link on behalf of a BP. Returns (lease found,
    /// re-auction pending).
    pub fn recall_link(
        &mut self,
        bp: u32,
        link: u32,
        notice_periods: u32,
    ) -> Result<(bool, bool), ClientError> {
        match self.call(Request::RecallLink { bp, link, notice_periods })? {
            Response::RecallDone { found, reauction_needed } => Ok((found, reauction_needed)),
            other => Err(ClientError::Protocol(format!("expected RecallDone, got {other:?}"))),
        }
    }

    /// Migrate the installed fabric to the link set a fresh auction
    /// selects — under the live traffic matrix scaled by `demand_scale`
    /// when given — one journaled lease operation at a time (every
    /// intermediate set verified feasible and resilient). Never
    /// auto-retried: a lost reply leaves the migration ambiguous, and
    /// [`PocClient::transition_status`] is the way to find out.
    pub fn begin_transition(
        &mut self,
        max_extra_links: Option<usize>,
        demand_scale: Option<f64>,
    ) -> Result<crate::proto::TransitionSummary, ClientError> {
        match self.call(Request::BeginTransition { max_extra_links, demand_scale })? {
            Response::TransitionDone(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected TransitionDone, got {other:?}"))),
        }
    }

    /// Summary of the last finished lease transition (including one
    /// finished by startup recovery), `None` if none ran.
    pub fn transition_status(
        &mut self,
    ) -> Result<Option<crate::proto::TransitionSummary>, ClientError> {
        match self.call(Request::TransitionStatus)? {
            Response::Transition(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected Transition, got {other:?}"))),
        }
    }

    /// The current lease book.
    pub fn leases(&mut self) -> Result<Vec<LeaseWire>, ClientError> {
        match self.call(Request::GetLeases)? {
            Response::Leases(ls) => Ok(ls),
            other => Err(ClientError::Protocol(format!("expected Leases, got {other:?}"))),
        }
    }

    /// Link ids of the fabric path between two members, if both attached
    /// and connected.
    pub fn path(&mut self, from: EntityId, to: EntityId) -> Result<Option<Vec<u32>>, ClientError> {
        match self.call(Request::GetPath { from, to })? {
            Response::Path { links } => Ok(links),
            other => Err(ClientError::Protocol(format!("expected Path, got {other:?}"))),
        }
    }

    /// Scrape the controller's live metrics snapshot (counters, gauges,
    /// and latency histograms from its global `poc-obs` registry).
    pub fn metrics(&mut self) -> Result<poc_obs::MetricsSnapshot, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(ClientError::Protocol(format!("expected Metrics, got {other:?}"))),
        }
    }

    /// Scrape recorded trace trees from the controller's flight
    /// recorder: one trace by id, the `last_n` most recent, or
    /// everything still in the ring (both `None`).
    pub fn traces(
        &mut self,
        trace_id: Option<u64>,
        last_n: Option<usize>,
    ) -> Result<Vec<poc_obs::TraceWire>, ClientError> {
        match self.call(Request::Trace { trace_id, last_n })? {
            Response::Traces(traces) => Ok(traces),
            other => Err(ClientError::Protocol(format!("expected Traces, got {other:?}"))),
        }
    }

    /// How the server recovered its state at startup (`None` when it
    /// runs without a state directory).
    pub fn recovery_info(&mut self) -> Result<Option<crate::recovery::RecoveryInfo>, ClientError> {
        match self.call(Request::GetRecovery)? {
            Response::Recovery(info) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected Recovery, got {other:?}"))),
        }
    }
}

/// Capped exponential backoff with jitter in `[0.5, 1.0)` of the nominal
/// delay (decorrelates clients retrying a shared outage). Retry `attempt`
/// counts from 1.
fn backoff_delay(retry: &RetryPolicy, attempt: u32, jitter: &mut ChaCha8Rng) -> Duration {
    let nominal = retry
        .base_backoff
        .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
        .min(retry.max_backoff);
    nominal.mul_f64(jitter.gen_range(0.5..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered() {
        let retry = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            jitter_seed: 7,
        };
        let mut jitter = ChaCha8Rng::seed_from_u64(retry.jitter_seed);
        let mut saw_below_nominal = false;
        for attempt in 1..=10u32 {
            let d = backoff_delay(&retry, attempt, &mut jitter);
            assert!(d <= retry.max_backoff, "attempt {attempt}: {d:?}");
            assert!(d >= retry.base_backoff.mul_f64(0.5), "attempt {attempt}: {d:?}");
            saw_below_nominal |= d < retry.max_backoff.mul_f64(0.99);
        }
        assert!(saw_below_nominal, "jitter never moved the delay off the cap");
        // Same seed ⇒ same schedule (deterministic tests).
        let mut a = ChaCha8Rng::seed_from_u64(retry.jitter_seed);
        let mut b = ChaCha8Rng::seed_from_u64(retry.jitter_seed);
        for attempt in 1..=5u32 {
            assert_eq!(
                backoff_delay(&retry, attempt, &mut a),
                backoff_delay(&retry, attempt, &mut b)
            );
        }
    }

    #[test]
    fn retryable_partition() {
        assert!(ClientError::TimedOut.is_retryable());
        assert!(ClientError::Busy { retry_after_ms: 5 }.is_retryable());
        assert!(ClientError::Codec(CodecError::Closed).is_retryable());
        assert!(ClientError::Codec(CodecError::Io(std::io::Error::other("reset"))).is_retryable());
        assert!(!ClientError::Server("at capacity".into()).is_retryable());
        assert!(!ClientError::Protocol("wrong variant".into()).is_retryable());
        assert!(!ClientError::Codec(CodecError::FrameTooLarge(9)).is_retryable());
    }
}

//! Typed blocking client for the POC control plane.

use crate::codec::{read_frame, write_frame, CodecError};
use crate::proto::{AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response};
use poc_core::entity::EntityId;
use poc_core::tos::{TrafficPolicy, Verdict};
use std::net::TcpStream;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Codec(CodecError),
    /// The server answered `Error { .. }`.
    Server(String),
    /// The server answered with an unexpected variant.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// A connection to the POC controller.
pub struct PocClient {
    stream: TcpStream,
}

impl PocClient {
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Ok(Self { stream: TcpStream::connect(addr)? })
    }

    fn call(&mut self, req: Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req)?;
        let resp: Response = read_frame(&mut self.stream)?;
        if let Response::Error { message } = resp {
            return Err(ClientError::Server(message));
        }
        Ok(resp)
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Attach and return the assigned entity id.
    pub fn attach(&mut self, name: &str, role: AttachRole) -> Result<EntityId, ClientError> {
        match self.call(Request::Attach { name: name.into(), role })? {
            Response::Welcome { entity } => Ok(entity),
            other => Err(ClientError::Protocol(format!("expected Welcome, got {other:?}"))),
        }
    }

    pub fn run_auction(&mut self) -> Result<OutcomeSummary, ClientError> {
        match self.call(Request::RunAuction)? {
            Response::AuctionDone(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected AuctionDone, got {other:?}"))),
        }
    }

    pub fn outcome(&mut self) -> Result<Option<OutcomeSummary>, ClientError> {
        match self.call(Request::GetOutcome)? {
            Response::Outcome(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected Outcome, got {other:?}"))),
        }
    }

    pub fn report_usage(&mut self, entity: EntityId, gbps: f64) -> Result<(), ClientError> {
        match self.call(Request::ReportUsage { entity, gbps })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::Protocol(format!("expected Ack, got {other:?}"))),
        }
    }

    pub fn run_billing(&mut self) -> Result<BillingSummaryWire, ClientError> {
        match self.call(Request::RunBilling)? {
            Response::BillingDone(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected BillingDone, got {other:?}"))),
        }
    }

    pub fn balance(&mut self, entity: EntityId) -> Result<f64, ClientError> {
        match self.call(Request::GetBalance { entity })? {
            Response::Balance { balance, .. } => Ok(balance),
            other => Err(ClientError::Protocol(format!("expected Balance, got {other:?}"))),
        }
    }

    pub fn review_policy(&mut self, policy: TrafficPolicy) -> Result<Verdict, ClientError> {
        match self.call(Request::ReviewPolicy { policy })? {
            Response::PolicyVerdict(v) => Ok(v),
            other => Err(ClientError::Protocol(format!("expected Verdict, got {other:?}"))),
        }
    }

    /// Recall a leased link on behalf of a BP. Returns (lease found,
    /// re-auction pending).
    pub fn recall_link(
        &mut self,
        bp: u32,
        link: u32,
        notice_periods: u32,
    ) -> Result<(bool, bool), ClientError> {
        match self.call(Request::RecallLink { bp, link, notice_periods })? {
            Response::RecallDone { found, reauction_needed } => Ok((found, reauction_needed)),
            other => Err(ClientError::Protocol(format!("expected RecallDone, got {other:?}"))),
        }
    }

    /// The current lease book.
    pub fn leases(&mut self) -> Result<Vec<LeaseWire>, ClientError> {
        match self.call(Request::GetLeases)? {
            Response::Leases(ls) => Ok(ls),
            other => Err(ClientError::Protocol(format!("expected Leases, got {other:?}"))),
        }
    }

    /// Link ids of the fabric path between two members, if both attached
    /// and connected.
    pub fn path(&mut self, from: EntityId, to: EntityId) -> Result<Option<Vec<u32>>, ClientError> {
        match self.call(Request::GetPath { from, to })? {
            Response::Path { links } => Ok(links),
            other => Err(ClientError::Protocol(format!("expected Path, got {other:?}"))),
        }
    }

    /// Scrape the controller's live metrics snapshot (counters, gauges,
    /// and latency histograms from its global `poc-obs` registry).
    pub fn metrics(&mut self) -> Result<poc_obs::MetricsSnapshot, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(ClientError::Protocol(format!("expected Metrics, got {other:?}"))),
        }
    }
}

//! TCP control plane for the POC.
//!
//! The reproduction band for this paper calls for a control-plane
//! prototype on real networking: this crate runs the [`poc_core::Poc`]
//! behind a TCP endpoint speaking a length-prefixed JSON protocol.
//! Members attach (LMP / direct CSP), the operator triggers auction
//! rounds and billing cycles, members query the ledger, submit usage,
//! request neutrality review of traffic policies, and scrape live
//! metrics (`Request::Metrics` returns the controller's `poc-obs`
//! registry snapshot: per-request latency histograms, frame and
//! connection counters, and everything the auction and flow layers
//! recorded).
//!
//! The control plane is built to survive misbehaving peers: the server
//! enforces a connection cap, per-connection idle deadlines, and write
//! deadlines ([`server::ServerConfig`]); the client runs every socket
//! operation under a deadline and retries idempotent requests through
//! an automatic reconnect loop with capped, jittered exponential
//! backoff ([`client::ClientConfig`]). The [`fault`] module is the
//! deterministic fault-injection harness the integration tests drive
//! against a live server.
//!
//! * [`proto`] — the wire messages;
//! * [`codec`] — length-prefixed framing over any `Read`/`Write`;
//! * [`server`] — the POC controller: sharded accept loops feeding a
//!   bounded worker pool behind an admission gate (typed
//!   `Response::Busy` backpressure), usage state sharded by entity so
//!   concurrent reports proceed in parallel, and durable mutations
//!   group-committed so K concurrent fsyncs coalesce into one;
//! * [`client`] — a typed blocking client with deadlines and retry;
//! * [`fault`] — test-only fault injection (frame truncation, garbage,
//!   oversized prefixes, drops, delays);
//! * [`journal`] — CRC-framed write-ahead journal of mutating events,
//!   with crash injection ([`journal::CrashSwitch`]);
//! * [`snapshot`] — atomic (tmp + fsync + rename) snapshot checkpoints;
//! * [`recovery`] — startup recovery: newest valid snapshot + journal
//!   replay, exactly-once by sequence number;
//! * `transition` — the safe lease-migration driver: `BeginTransition`
//!   plans a feasibility-preserving step order (`poc-transition`),
//!   journals every step before applying it, and startup recovery
//!   resumes or rolls back a transition the journal left open.
//!
//! By default the controller keeps state in memory only. Give
//! [`server::ServerConfig`] a [`recovery::DurabilityConfig`] (CLI:
//! `poc serve --state-dir`) and every mutating request is journaled
//! before it is applied, snapshots are cut periodically, and a restart
//! from the same state directory rebuilds the ledger, lease book, and
//! last auction outcome exactly.

pub mod client;
pub mod codec;
pub mod fault;
pub mod journal;
pub mod proto;
pub mod recovery;
pub mod server;
pub(crate) mod shard;
pub mod snapshot;
pub(crate) mod transition;

pub use client::{ClientConfig, ClientError, PocClient, RetryPolicy};
pub use journal::{CrashPoint, CrashSwitch, FsyncFault, FsyncPolicy};
pub use proto::{AttachRole, Request, Response, TransitionSummary};
pub use recovery::{DurabilityConfig, RecoveryInfo};
pub use server::{PocServer, ServerConfig, ServerHandle};

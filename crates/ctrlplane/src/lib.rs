//! TCP control plane for the POC.
//!
//! The reproduction band for this paper calls for a control-plane
//! prototype on real networking: this crate runs the [`poc_core::Poc`]
//! behind a TCP endpoint speaking a length-prefixed JSON protocol.
//! Members attach (LMP / direct CSP), the operator triggers auction
//! rounds and billing cycles, members query the ledger, submit usage,
//! request neutrality review of traffic policies, and scrape live
//! metrics (`Request::Metrics` returns the controller's `poc-obs`
//! registry snapshot: per-request latency histograms, frame and
//! connection counters, and everything the auction and flow layers
//! recorded).
//!
//! * [`proto`] — the wire messages;
//! * [`codec`] — length-prefixed framing over any `Read`/`Write`;
//! * [`server`] — the POC controller: one thread per connection, state
//!   behind a mutex (auction rounds serialize state mutation —
//!   acceptable for a control plane, where rounds are rare and minutes
//!   apart);
//! * [`client`] — a typed blocking client.

pub mod client;
pub mod codec;
pub mod proto;
pub mod server;

pub use client::PocClient;
pub use proto::{AttachRole, Request, Response};
pub use server::{PocServer, ServerHandle};

//! Async TCP control plane for the POC.
//!
//! The reproduction band for this paper calls for a control-plane
//! prototype on async networking: this crate runs the [`poc_core::Poc`]
//! behind a TCP endpoint speaking a length-prefixed JSON protocol.
//! Members attach (LMP / direct CSP), the operator triggers auction
//! rounds and billing cycles, members query the ledger, submit usage, and
//! request neutrality review of traffic policies.
//!
//! * [`proto`] — the wire messages;
//! * [`codec`] — length-prefixed framing over any `AsyncRead`/`AsyncWrite`;
//! * [`server`] — the POC controller: one task per connection, state
//!   behind an async mutex (auction rounds serialize state mutation —
//!   acceptable for a control plane, where rounds are rare and minutes
//!   apart);
//! * [`client`] — a typed async client.

pub mod client;
pub mod codec;
pub mod proto;
pub mod server;

pub use client::PocClient;
pub use proto::{AttachRole, Request, Response};
pub use server::{PocServer, ServerHandle};

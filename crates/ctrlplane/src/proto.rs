//! Wire protocol: JSON payloads in length-prefixed frames.
//!
//! The protocol is deliberately request/response (no server push): every
//! [`Request`] gets exactly one [`Response`] on the same connection, in
//! order. JSON keeps the prototype debuggable with `nc`/`jq`; the framing
//! (4-byte big-endian length) makes message boundaries explicit.

use poc_core::entity::EntityId;
use poc_core::tos::{TrafficPolicy, Verdict};
use poc_obs::MetricsSnapshot;
use poc_topology::RouterId;
use serde::{Deserialize, Serialize};

/// How an attaching member connects (§1.2: LMPs and large CSPs attach
/// directly; other CSPs come in through an LMP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttachRole {
    Lmp { router: RouterId },
    DirectCsp { router: RouterId },
    HostedCsp { via_lmp: EntityId },
}

/// Client → server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Attach as a member; the reply carries the assigned entity id.
    Attach { name: String, role: AttachRole },
    /// Liveness check.
    Ping,
    /// Operator: run an auction round against the POC's current
    /// traffic-matrix estimate.
    RunAuction,
    /// Summary of the last auction outcome.
    GetOutcome,
    /// Operator: settle the period from the usage reports received since
    /// the last billing cycle.
    RunBilling,
    /// Member reports billable usage (Gbit/s average) for this period.
    ReportUsage { entity: EntityId, gbps: f64 },
    /// Ledger balance of an entity.
    GetBalance { entity: EntityId },
    /// Ask the neutrality engine to rule on a policy before deploying it.
    ReviewPolicy { policy: TrafficPolicy },
    /// Path through the installed fabric between two members.
    GetPath { from: EntityId, to: EntityId },
    /// A BP recalls one of its leased links (§3.3 overbuy-then-recall),
    /// with notice measured in billing periods.
    RecallLink { bp: u32, link: u32, notice_periods: u32 },
    /// Current lease book summary.
    GetLeases,
    /// Operator: migrate the installed fabric to the link set a fresh
    /// auction selects, one journaled lease operation at a time, with
    /// every intermediate set verified feasible and resilient.
    /// `max_extra_links` bounds planner headroom (extra links live at
    /// once beyond the larger endpoint); `None` leaves it unbounded.
    /// `demand_scale` targets the set the auction would select under
    /// the traffic matrix scaled by that factor — the operator's knob
    /// for provisioning ahead of forecast demand growth (`None` = 1.0,
    /// the current matrix). The scale is journaled with the transition,
    /// so recovery recomputes the same target.
    BeginTransition { max_extra_links: Option<usize>, demand_scale: Option<f64> },
    /// Summary of the last finished lease transition (including one
    /// finished by startup recovery), `None` if none ran.
    TransitionStatus,
    /// Scrape the controller's live metrics (the global `poc-obs`
    /// registry snapshot, JSON on the wire like every other message).
    Metrics,
    /// How the server recovered its state at startup (`None` when it
    /// runs without a state directory).
    GetRecovery,
    /// Envelope: the inner request, tagged with a caller-chosen trace
    /// id. The server roots the request's span tree at that id, so one
    /// `poc trace` scrape later can show everything the request touched
    /// — journal appends, the auction round, every pivot. Old clients
    /// simply never send the envelope (and old servers never see it):
    /// every other variant's wire form is unchanged, which the
    /// `old_wire_forms_decode_unchanged` test pins down.
    Traced { trace_id: u64, request: Box<Request> },
    /// Scrape recorded trace trees from the server's flight recorder:
    /// one trace by id, the `last_n` most recent, or everything the
    /// ring still holds (both `None`).
    Trace { trace_id: Option<u64>, last_n: Option<usize> },
}

impl Request {
    /// Stable variant label, used as the per-request latency metric
    /// suffix (`ctrl.request.<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Attach { .. } => "attach",
            Request::Ping => "ping",
            Request::RunAuction => "run_auction",
            Request::GetOutcome => "get_outcome",
            Request::RunBilling => "run_billing",
            Request::ReportUsage { .. } => "report_usage",
            Request::GetBalance { .. } => "get_balance",
            Request::ReviewPolicy { .. } => "review_policy",
            Request::GetPath { .. } => "get_path",
            Request::RecallLink { .. } => "recall_link",
            Request::GetLeases => "get_leases",
            Request::Metrics => "metrics",
            Request::GetRecovery => "get_recovery",
            Request::BeginTransition { .. } => "begin_transition",
            Request::TransitionStatus => "transition_status",
            // The envelope is invisible in metrics: a traced RunAuction
            // is still a RunAuction.
            Request::Traced { request, .. } => request.name(),
            Request::Trace { .. } => "trace",
        }
    }

    /// The per-request latency histogram name (`ctrl.request.<name>`),
    /// as a static string so it can also name the request's root span.
    pub fn metric_name(&self) -> &'static str {
        match self {
            Request::Attach { .. } => "ctrl.request.attach",
            Request::Ping => "ctrl.request.ping",
            Request::RunAuction => "ctrl.request.run_auction",
            Request::GetOutcome => "ctrl.request.get_outcome",
            Request::RunBilling => "ctrl.request.run_billing",
            Request::ReportUsage { .. } => "ctrl.request.report_usage",
            Request::GetBalance { .. } => "ctrl.request.get_balance",
            Request::ReviewPolicy { .. } => "ctrl.request.review_policy",
            Request::GetPath { .. } => "ctrl.request.get_path",
            Request::RecallLink { .. } => "ctrl.request.recall_link",
            Request::GetLeases => "ctrl.request.get_leases",
            Request::Metrics => "ctrl.request.metrics",
            Request::GetRecovery => "ctrl.request.get_recovery",
            Request::BeginTransition { .. } => "ctrl.request.begin_transition",
            Request::TransitionStatus => "ctrl.request.transition_status",
            Request::Traced { request, .. } => request.metric_name(),
            Request::Trace { .. } => "ctrl.request.trace",
        }
    }

    /// Whether replaying this request after a transport failure is safe.
    /// Only idempotent requests may be retried by the client's automatic
    /// reconnect loop: a lost response to `RunAuction`, `RunBilling`,
    /// `Attach`, `ReportUsage`, or `RecallLink` leaves the server's state
    /// ambiguous (the mutation may have been applied), so those surface
    /// the error to the caller instead.
    pub fn is_idempotent(&self) -> bool {
        match self {
            // The envelope is transparent to retry policy too: tracing
            // a mutation must not make it replayable.
            Request::Traced { request, .. } => request.is_idempotent(),
            _ => matches!(
                self,
                Request::Ping
                    | Request::GetOutcome
                    | Request::GetBalance { .. }
                    | Request::GetPath { .. }
                    | Request::GetLeases
                    | Request::Metrics
                    | Request::GetRecovery
                    | Request::TransitionStatus
                    | Request::Trace { .. }
            ),
        }
    }
}

/// One lease as shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseWire {
    pub link: u32,
    pub bp: u32,
    pub monthly_payment: f64,
    /// `"active"`, `"recalled@<period>"`, or `"expired"`.
    pub state: String,
}

/// Auction outcome summary shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeSummary {
    pub n_selected_links: usize,
    pub total_cost: f64,
    pub total_payments: f64,
    /// (bp index, payment, payment-over-bid margin).
    pub settlements: Vec<(u32, f64, Option<f64>)>,
}

/// How a lease transition ended, as shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransitionSummary {
    /// `"committed"`, `"rolled_back"`, or `"force_restored"`.
    pub outcome: String,
    /// Lease operations applied, across the original plan and any
    /// replans or rollback steps.
    pub steps_applied: u64,
    pub replans: u32,
    pub rollbacks: u32,
    /// Links installed when the transition started / when it finished.
    pub n_from_links: usize,
    pub n_final_links: usize,
    /// Whether startup recovery finished this transition (resume or
    /// rollback of one interrupted by a crash) rather than the request
    /// that began it.
    pub recovered: bool,
}

/// Billing summary shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BillingSummaryWire {
    pub period: u32,
    pub total_outlay: f64,
    pub unit_price: f64,
    pub poc_net: f64,
    pub charges: Vec<(EntityId, f64)>,
}

/// Server → client.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Welcome {
        entity: EntityId,
    },
    Pong,
    Ack,
    AuctionDone(OutcomeSummary),
    Outcome(Option<OutcomeSummary>),
    BillingDone(BillingSummaryWire),
    Balance {
        entity: EntityId,
        balance: f64,
    },
    PolicyVerdict(Verdict),
    Path {
        links: Option<Vec<u32>>,
    },
    /// Recall accepted (`found` = an active lease matched) and whether a
    /// re-auction is now pending.
    RecallDone {
        found: bool,
        reauction_needed: bool,
    },
    Leases(Vec<LeaseWire>),
    /// A lease transition finished (one way or another; the summary's
    /// `outcome` says which).
    TransitionDone(TransitionSummary),
    /// Status of the last finished lease transition.
    Transition(Option<TransitionSummary>),
    /// The controller's metrics snapshot.
    Metrics(MetricsSnapshot),
    /// Startup recovery report (`None` when the server keeps state in
    /// memory only).
    Recovery(Option<crate::recovery::RecoveryInfo>),
    /// Recorded trace trees from the controller's flight recorder.
    Traces(Vec<poc_obs::TraceWire>),
    /// Admission backpressure: the server is over its in-flight request
    /// budget. Nothing was journaled or applied, so the request — even a
    /// mutation — is always safe to resend after the hinted delay.
    Busy {
        retry_after_ms: u64,
    },
    Error {
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let req =
            Request::Attach { name: "lmp-1".into(), role: AttachRole::Lmp { router: RouterId(3) } };
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: Request = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(req, back);

        let resp = Response::Welcome { entity: EntityId(7) };
        let bytes = serde_json::to_vec(&resp).unwrap();
        let back: Response = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn verdict_round_trip() {
        let v = Verdict::Violation { condition: 2, rationale: "x".into() };
        let resp = Response::PolicyVerdict(v.clone());
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, Response::PolicyVerdict(v));
    }

    #[test]
    fn metrics_round_trip() {
        // Request::Metrics is a unit variant (serializes as a string).
        let back: Request =
            serde_json::from_slice(&serde_json::to_vec(&Request::Metrics).unwrap()).unwrap();
        assert_eq!(back, Request::Metrics);
        assert_eq!(Request::Metrics.name(), "metrics");

        let reg = poc_obs::MetricsRegistry::new();
        reg.counter("proto.test.count").inc();
        reg.histogram("proto.test.hist").record(1024);
        let resp = Response::Metrics(reg.snapshot());
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        let Response::Metrics(snap) = back else { panic!("expected Metrics") };
        assert_eq!(snap.counter("proto.test.count"), Some(1));
        assert_eq!(snap.histogram("proto.test.hist").unwrap().count, 1);
    }

    #[test]
    fn idempotency_partition() {
        // Reads retry; mutations never do.
        assert!(Request::Ping.is_idempotent());
        assert!(Request::GetOutcome.is_idempotent());
        assert!(Request::GetBalance { entity: EntityId(1) }.is_idempotent());
        assert!(Request::GetPath { from: EntityId(1), to: EntityId(2) }.is_idempotent());
        assert!(Request::GetLeases.is_idempotent());
        assert!(Request::Metrics.is_idempotent());
        assert!(Request::GetRecovery.is_idempotent());
        assert!(Request::TransitionStatus.is_idempotent());
        assert!(!Request::RunAuction.is_idempotent());
        assert!(
            !Request::BeginTransition { max_extra_links: None, demand_scale: None }.is_idempotent(),
            "a lost reply leaves the migration ambiguous; never auto-retry"
        );
        assert!(!Request::RunBilling.is_idempotent());
        assert!(!Request::ReportUsage { entity: EntityId(1), gbps: 1.0 }.is_idempotent());
        assert!(!Request::RecallLink { bp: 0, link: 0, notice_periods: 1 }.is_idempotent());
        assert!(!Request::Attach {
            name: "x".into(),
            role: AttachRole::Lmp { router: RouterId(0) }
        }
        .is_idempotent());
        assert!(
            !Request::ReviewPolicy {
                policy: poc_core::tos::TrafficPolicy {
                    lmp: EntityId(1),
                    matches: poc_core::tos::PolicyMatch::any(),
                    action: poc_core::tos::PolicyAction::Block,
                    basis: poc_core::tos::PolicyBasis::Commercial,
                }
            }
            .is_idempotent(),
            "review verdicts may depend on evolving policy state; stay conservative"
        );
    }

    #[test]
    fn busy_round_trips() {
        let resp = Response::Busy { retry_after_ms: 5 };
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn unknown_variant_fails_cleanly() {
        let err = serde_json::from_str::<Request>("{\"Nonsense\":{}}");
        assert!(err.is_err());
    }

    /// Old-client regression: the exact wire bytes a pre-tracing client
    /// sends (no `Traced` envelope anywhere) still decode to the same
    /// variants, and serializing those variants still produces the same
    /// bytes — the trace envelope changed nothing for old peers.
    #[test]
    fn old_wire_forms_decode_unchanged() {
        let legacy: [(&str, Request); 5] = [
            ("\"Ping\"", Request::Ping),
            ("\"RunAuction\"", Request::RunAuction),
            ("\"Metrics\"", Request::Metrics),
            ("{\"GetBalance\":{\"entity\":3}}", Request::GetBalance { entity: EntityId(3) }),
            (
                "{\"ReportUsage\":{\"entity\":2,\"gbps\":1.5}}",
                Request::ReportUsage { entity: EntityId(2), gbps: 1.5 },
            ),
        ];
        for (wire, expected) in legacy {
            let decoded: Request = serde_json::from_str(wire).expect(wire);
            assert_eq!(decoded, expected, "legacy bytes must decode to the same request");
            let encoded = String::from_utf8(serde_json::to_vec(&expected).unwrap()).unwrap();
            assert_eq!(encoded, wire, "new servers must emit bytes old peers understand");
            assert!(
                !encoded.contains("trace"),
                "no trace field may leak into an unenveloped request"
            );
        }
    }

    #[test]
    fn transition_messages_round_trip() {
        let req = Request::BeginTransition { max_extra_links: Some(2), demand_scale: Some(1.5) };
        let back: Request = serde_json::from_slice(&serde_json::to_vec(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        assert_eq!(req.name(), "begin_transition");
        assert_eq!(req.metric_name(), "ctrl.request.begin_transition");

        let summary = TransitionSummary {
            outcome: "committed".into(),
            steps_applied: 4,
            replans: 1,
            rollbacks: 0,
            n_from_links: 3,
            n_final_links: 4,
            recovered: false,
        };
        let resp = Response::TransitionDone(summary.clone());
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        let status = Response::Transition(Some(summary));
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&status).unwrap()).unwrap();
        assert_eq!(back, status);
        let none = Response::Transition(None);
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&none).unwrap()).unwrap();
        assert_eq!(back, none);
    }

    #[test]
    fn traced_envelope_round_trips_and_delegates() {
        let inner = Request::RunAuction;
        let traced = Request::Traced { trace_id: 42, request: Box::new(inner.clone()) };
        let back: Request = serde_json::from_slice(&serde_json::to_vec(&traced).unwrap()).unwrap();
        assert_eq!(back, traced);
        // The envelope is transparent to naming, metrics, and retry
        // policy: a traced RunAuction is a RunAuction.
        assert_eq!(traced.name(), "run_auction");
        assert_eq!(traced.metric_name(), "ctrl.request.run_auction");
        assert!(!traced.is_idempotent(), "tracing must not make a mutation retryable");
        let traced_read = Request::Traced { trace_id: 7, request: Box::new(Request::Ping) };
        assert!(traced_read.is_idempotent());
    }

    #[test]
    fn trace_scrape_round_trips() {
        let req = Request::Trace { trace_id: Some(9), last_n: None };
        let back: Request = serde_json::from_slice(&serde_json::to_vec(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        assert!(req.is_idempotent(), "scrapes retry like Metrics");
        assert_eq!(req.name(), "trace");

        let resp = Response::Traces(vec![poc_obs::TraceWire {
            trace_id: 9,
            events: vec![poc_obs::TraceEventWire {
                trace_id: 9,
                span_id: 2,
                parent_id: 1,
                name: "auction.pivot".into(),
                start_ns: 10,
                dur_ns: 20,
                thread: 1,
                fields: vec![("bp".into(), "3".into())],
            }],
        }]);
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }
}

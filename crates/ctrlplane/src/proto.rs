//! Wire protocol: JSON payloads in length-prefixed frames.
//!
//! The protocol is deliberately request/response (no server push): every
//! [`Request`] gets exactly one [`Response`] on the same connection, in
//! order. JSON keeps the prototype debuggable with `nc`/`jq`; the framing
//! (4-byte big-endian length) makes message boundaries explicit.

use poc_core::entity::EntityId;
use poc_core::tos::{TrafficPolicy, Verdict};
use poc_obs::MetricsSnapshot;
use poc_topology::RouterId;
use serde::{Deserialize, Serialize};

/// How an attaching member connects (§1.2: LMPs and large CSPs attach
/// directly; other CSPs come in through an LMP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttachRole {
    Lmp { router: RouterId },
    DirectCsp { router: RouterId },
    HostedCsp { via_lmp: EntityId },
}

/// Client → server.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Attach as a member; the reply carries the assigned entity id.
    Attach { name: String, role: AttachRole },
    /// Liveness check.
    Ping,
    /// Operator: run an auction round against the POC's current
    /// traffic-matrix estimate.
    RunAuction,
    /// Summary of the last auction outcome.
    GetOutcome,
    /// Operator: settle the period from the usage reports received since
    /// the last billing cycle.
    RunBilling,
    /// Member reports billable usage (Gbit/s average) for this period.
    ReportUsage { entity: EntityId, gbps: f64 },
    /// Ledger balance of an entity.
    GetBalance { entity: EntityId },
    /// Ask the neutrality engine to rule on a policy before deploying it.
    ReviewPolicy { policy: TrafficPolicy },
    /// Path through the installed fabric between two members.
    GetPath { from: EntityId, to: EntityId },
    /// A BP recalls one of its leased links (§3.3 overbuy-then-recall),
    /// with notice measured in billing periods.
    RecallLink { bp: u32, link: u32, notice_periods: u32 },
    /// Current lease book summary.
    GetLeases,
    /// Scrape the controller's live metrics (the global `poc-obs`
    /// registry snapshot, JSON on the wire like every other message).
    Metrics,
    /// How the server recovered its state at startup (`None` when it
    /// runs without a state directory).
    GetRecovery,
}

impl Request {
    /// Stable variant label, used as the per-request latency metric
    /// suffix (`ctrl.request.<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Attach { .. } => "attach",
            Request::Ping => "ping",
            Request::RunAuction => "run_auction",
            Request::GetOutcome => "get_outcome",
            Request::RunBilling => "run_billing",
            Request::ReportUsage { .. } => "report_usage",
            Request::GetBalance { .. } => "get_balance",
            Request::ReviewPolicy { .. } => "review_policy",
            Request::GetPath { .. } => "get_path",
            Request::RecallLink { .. } => "recall_link",
            Request::GetLeases => "get_leases",
            Request::Metrics => "metrics",
            Request::GetRecovery => "get_recovery",
        }
    }

    /// Whether replaying this request after a transport failure is safe.
    /// Only idempotent requests may be retried by the client's automatic
    /// reconnect loop: a lost response to `RunAuction`, `RunBilling`,
    /// `Attach`, `ReportUsage`, or `RecallLink` leaves the server's state
    /// ambiguous (the mutation may have been applied), so those surface
    /// the error to the caller instead.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::GetOutcome
                | Request::GetBalance { .. }
                | Request::GetPath { .. }
                | Request::GetLeases
                | Request::Metrics
                | Request::GetRecovery
        )
    }
}

/// One lease as shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaseWire {
    pub link: u32,
    pub bp: u32,
    pub monthly_payment: f64,
    /// `"active"`, `"recalled@<period>"`, or `"expired"`.
    pub state: String,
}

/// Auction outcome summary shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeSummary {
    pub n_selected_links: usize,
    pub total_cost: f64,
    pub total_payments: f64,
    /// (bp index, payment, payment-over-bid margin).
    pub settlements: Vec<(u32, f64, Option<f64>)>,
}

/// Billing summary shipped to clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BillingSummaryWire {
    pub period: u32,
    pub total_outlay: f64,
    pub unit_price: f64,
    pub poc_net: f64,
    pub charges: Vec<(EntityId, f64)>,
}

/// Server → client.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Welcome {
        entity: EntityId,
    },
    Pong,
    Ack,
    AuctionDone(OutcomeSummary),
    Outcome(Option<OutcomeSummary>),
    BillingDone(BillingSummaryWire),
    Balance {
        entity: EntityId,
        balance: f64,
    },
    PolicyVerdict(Verdict),
    Path {
        links: Option<Vec<u32>>,
    },
    /// Recall accepted (`found` = an active lease matched) and whether a
    /// re-auction is now pending.
    RecallDone {
        found: bool,
        reauction_needed: bool,
    },
    Leases(Vec<LeaseWire>),
    /// The controller's metrics snapshot.
    Metrics(MetricsSnapshot),
    /// Startup recovery report (`None` when the server keeps state in
    /// memory only).
    Recovery(Option<crate::recovery::RecoveryInfo>),
    Error {
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let req =
            Request::Attach { name: "lmp-1".into(), role: AttachRole::Lmp { router: RouterId(3) } };
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: Request = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(req, back);

        let resp = Response::Welcome { entity: EntityId(7) };
        let bytes = serde_json::to_vec(&resp).unwrap();
        let back: Response = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn verdict_round_trip() {
        let v = Verdict::Violation { condition: 2, rationale: "x".into() };
        let resp = Response::PolicyVerdict(v.clone());
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, Response::PolicyVerdict(v));
    }

    #[test]
    fn metrics_round_trip() {
        // Request::Metrics is a unit variant (serializes as a string).
        let back: Request =
            serde_json::from_slice(&serde_json::to_vec(&Request::Metrics).unwrap()).unwrap();
        assert_eq!(back, Request::Metrics);
        assert_eq!(Request::Metrics.name(), "metrics");

        let reg = poc_obs::MetricsRegistry::new();
        reg.counter("proto.test.count").inc();
        reg.histogram("proto.test.hist").record(1024);
        let resp = Response::Metrics(reg.snapshot());
        let back: Response = serde_json::from_slice(&serde_json::to_vec(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        let Response::Metrics(snap) = back else { panic!("expected Metrics") };
        assert_eq!(snap.counter("proto.test.count"), Some(1));
        assert_eq!(snap.histogram("proto.test.hist").unwrap().count, 1);
    }

    #[test]
    fn idempotency_partition() {
        // Reads retry; mutations never do.
        assert!(Request::Ping.is_idempotent());
        assert!(Request::GetOutcome.is_idempotent());
        assert!(Request::GetBalance { entity: EntityId(1) }.is_idempotent());
        assert!(Request::GetPath { from: EntityId(1), to: EntityId(2) }.is_idempotent());
        assert!(Request::GetLeases.is_idempotent());
        assert!(Request::Metrics.is_idempotent());
        assert!(Request::GetRecovery.is_idempotent());
        assert!(!Request::RunAuction.is_idempotent());
        assert!(!Request::RunBilling.is_idempotent());
        assert!(!Request::ReportUsage { entity: EntityId(1), gbps: 1.0 }.is_idempotent());
        assert!(!Request::RecallLink { bp: 0, link: 0, notice_periods: 1 }.is_idempotent());
        assert!(!Request::Attach {
            name: "x".into(),
            role: AttachRole::Lmp { router: RouterId(0) }
        }
        .is_idempotent());
        assert!(
            !Request::ReviewPolicy {
                policy: poc_core::tos::TrafficPolicy {
                    lmp: EntityId(1),
                    matches: poc_core::tos::PolicyMatch::any(),
                    action: poc_core::tos::PolicyAction::Block,
                    basis: poc_core::tos::PolicyBasis::Commercial,
                }
            }
            .is_idempotent(),
            "review verdicts may depend on evolving policy state; stay conservative"
        );
    }

    #[test]
    fn unknown_variant_fails_cleanly() {
        let err = serde_json::from_str::<Request>("{\"Nonsense\":{}}");
        assert!(err.is_err());
    }
}

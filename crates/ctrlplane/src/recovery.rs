//! Startup recovery and the durability orchestrator.
//!
//! [`Durability`] owns the state directory: one append-only journal
//! (`journal.wal`) plus snapshot generations (`snap-*.snap`). The server
//! funnels every mutating event through [`Durability::record`] *before*
//! applying it, and periodically calls [`Durability::checkpoint`] to
//! fold the journal into a snapshot and truncate it.
//!
//! [`Durability::open`] is the recovery path: load the newest valid
//! snapshot (falling back past torn generations), scan the journal's
//! valid prefix (truncating a torn tail), and hand back the events that
//! postdate the snapshot for replay. Records the snapshot already
//! contains — left behind by a crash between snapshot-rename and
//! journal-truncate — are skipped by sequence number, which is what
//! makes recovery exactly-once.

use crate::journal::{
    scan, CrashPoint, CrashSwitch, FsyncFault, FsyncPolicy, GroupJournal, JournalError,
    JournalEvent, JournalRecord,
};
use crate::snapshot::{load_newest, write_snapshot, ControllerSnapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Journal file name inside the state directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// How a server persists its state.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the journal and snapshots (created if absent).
    pub state_dir: PathBuf,
    /// When journal appends reach the platter.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many journaled events (0 = never
    /// checkpoint; the journal grows until shutdown).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self { state_dir: state_dir.into(), fsync: FsyncPolicy::Always, snapshot_every: 64 }
    }
}

/// What happened during startup recovery; served to clients via
/// `GetRecovery` so tests (and operators) can see exactly how a restart
/// rebuilt its state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// Sequence number of the snapshot recovery started from, if any.
    pub snapshot_seq: Option<u64>,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Journal records skipped because the snapshot already contained
    /// them (crash between snapshot-rename and journal-truncate).
    pub skipped_records: u64,
    /// Whether the journal had a torn tail (crash mid-append) that was
    /// truncated.
    pub torn_tail: bool,
    /// Newer snapshot generations that failed validation and were
    /// skipped in favour of an older one.
    pub skipped_snapshots: u64,
}

/// Errors from [`Durability::open`].
#[derive(Debug)]
pub enum RecoveryError {
    Io(std::io::Error),
    /// The newest valid snapshot was taken against a different topology
    /// than the server is booting with; replay would be nonsense.
    TopologyMismatch {
        expected: u64,
        found: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery io: {e}"),
            RecoveryError::TopologyMismatch { expected, found } => write!(
                f,
                "state dir belongs to a different controller instance \
                 (topology fingerprint {found:#x}, this server is {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// The result of opening a state directory: the live durability handle
/// plus everything the server needs to rebuild in-memory state.
pub struct Recovered {
    pub durability: Durability,
    /// Newest valid snapshot, to restore wholesale before replay.
    pub snapshot: Option<ControllerSnapshot>,
    /// Journal events newer than the snapshot, in append order.
    pub replay: Vec<JournalEvent>,
    pub info: RecoveryInfo,
}

/// Owns the journal and the checkpoint cadence for one running server.
/// Internally synchronized: shard threads call [`Durability::record`]
/// concurrently and their fsyncs coalesce behind the
/// [`GroupJournal`]'s commit leader. Only [`Durability::checkpoint`]
/// demands external exclusion (the server holds every state lock
/// across it, so no append is in flight when the snapshot seq is
/// captured).
pub struct Durability {
    dir: PathBuf,
    journal: GroupJournal,
    crash: CrashSwitch,
    /// Events journaled since the last durable checkpoint.
    since_checkpoint: AtomicU64,
    snapshot_every: u64,
    fingerprint: u64,
}

impl Durability {
    /// Open (or create) a state directory and recover from it.
    /// `fingerprint` is the booting server's topology fingerprint; a
    /// snapshot from a different topology is refused. `fault` is the
    /// injectable fsync-failure switch (unarmed in production).
    pub fn open(
        config: &DurabilityConfig,
        fingerprint: u64,
        crash: CrashSwitch,
        fault: FsyncFault,
    ) -> Result<Recovered, RecoveryError> {
        std::fs::create_dir_all(&config.state_dir)?;
        let loaded = load_newest(&config.state_dir)?;
        if let Some(s) = &loaded.snapshot {
            if s.fingerprint != fingerprint {
                return Err(RecoveryError::TopologyMismatch {
                    expected: fingerprint,
                    found: s.fingerprint,
                });
            }
        }
        let snapshot_seq = loaded.snapshot.as_ref().map(|s| s.seq);
        let floor = snapshot_seq.unwrap_or(0);

        let journal_path = journal_path(&config.state_dir);
        let scanned = scan(&journal_path)?;
        let mut skipped = 0u64;
        let mut replay = Vec::new();
        let mut last_seq = floor;
        for JournalRecord { seq, event } in scanned.records {
            if seq <= floor {
                skipped += 1;
                continue;
            }
            last_seq = last_seq.max(seq);
            replay.push(event);
        }
        let journal = GroupJournal::open(
            &journal_path,
            scanned.valid_len,
            config.fsync,
            last_seq + 1,
            fault,
        )?;

        let info = RecoveryInfo {
            snapshot_seq,
            replayed_records: replay.len() as u64,
            skipped_records: skipped,
            torn_tail: scanned.torn_tail,
            skipped_snapshots: loaded.skipped_invalid,
        };
        poc_obs::counter!("ctrl.recovery.replayed_records").add(info.replayed_records);
        if info.torn_tail {
            poc_obs::counter!("ctrl.recovery.torn_tails").inc();
        }

        Ok(Recovered {
            durability: Durability {
                dir: config.state_dir.clone(),
                journal,
                crash,
                since_checkpoint: AtomicU64::new(replay.len() as u64),
                snapshot_every: config.snapshot_every,
                fingerprint,
            },
            snapshot: loaded.snapshot,
            replay,
            info,
        })
    }

    /// Journal one event (write-ahead: call this *before* applying the
    /// event to in-memory state) and wait until it is as durable as the
    /// fsync policy demands. Returns the assigned sequence number.
    /// Concurrent callers coalesce into one group-commit fsync.
    pub fn record(&self, event: JournalEvent) -> Result<u64, JournalError> {
        let seq = self.journal.append(event, &self.crash)?;
        self.since_checkpoint.fetch_add(1, Ordering::SeqCst);
        Ok(seq)
    }

    /// Whether enough events have accumulated that the server should
    /// cut a checkpoint after applying the current one.
    pub fn wants_checkpoint(&self) -> bool {
        self.snapshot_every > 0
            && self.since_checkpoint.load(Ordering::SeqCst) >= self.snapshot_every
    }

    /// Write a snapshot of the state as of the last recorded event,
    /// then truncate the journal. A crash between those two steps
    /// leaves already-snapshotted records in the journal; recovery
    /// skips them by sequence number. The caller must exclude every
    /// concurrent mutation (the server holds all state locks), so the
    /// captured seq is exact.
    pub fn checkpoint(
        &self,
        poc: poc_core::poc::PocState,
        usage: std::collections::BTreeMap<poc_core::entity::EntityId, f64>,
    ) -> Result<(), JournalError> {
        let snapshot = ControllerSnapshot {
            seq: self.journal.next_seq() - 1,
            fingerprint: self.fingerprint,
            poc,
            usage,
        };
        match write_snapshot(&self.dir, &snapshot, &self.crash) {
            Ok(()) => {}
            Err(SnapshotError::Crashed(p)) => return Err(JournalError::Crashed(p)),
            Err(SnapshotError::Io(e)) => return Err(JournalError::Io(e)),
        }
        if self.crash.fire_if(CrashPoint::AfterSnapshotBeforeTruncate) {
            return Err(JournalError::Crashed(CrashPoint::AfterSnapshotBeforeTruncate));
        }
        self.journal.truncate_to_empty()?;
        self.since_checkpoint.store(0, Ordering::SeqCst);
        Ok(())
    }

    /// Flush the journal (shutdown barrier).
    pub fn sync(&self) -> std::io::Result<()> {
        self.journal.sync()
    }

    /// Sequence number the next event will get (tests).
    pub fn next_seq(&self) -> u64 {
        self.journal.next_seq()
    }
}

/// The journal's path inside a state directory.
pub fn journal_path(state_dir: &Path) -> PathBuf {
    state_dir.join(JOURNAL_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_core::poc::PocState;
    use std::collections::BTreeMap;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poc-recovery-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> DurabilityConfig {
        DurabilityConfig {
            state_dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 0,
        }
    }

    fn open(dir: &Path) -> Recovered {
        Durability::open(&config(dir), 0xabc, CrashSwitch::new(), FsyncFault::new()).unwrap()
    }

    #[test]
    fn fresh_dir_recovers_empty() {
        let dir = tmp_dir("fresh");
        let r = open(&dir);
        assert!(r.snapshot.is_none());
        assert!(r.replay.is_empty());
        assert_eq!(
            r.info,
            RecoveryInfo {
                snapshot_seq: None,
                replayed_records: 0,
                skipped_records: 0,
                torn_tail: false,
                skipped_snapshots: 0,
            }
        );
        assert_eq!(r.durability.next_seq(), 1);
    }

    #[test]
    fn recorded_events_replay_in_order_after_reopen() {
        let dir = tmp_dir("replay");
        let r = open(&dir);
        for _ in 0..3 {
            r.durability.record(JournalEvent::RunAuction).unwrap();
        }
        r.durability.record(JournalEvent::RunBilling).unwrap();
        drop(r);

        let r2 = open(&dir);
        assert!(r2.snapshot.is_none());
        assert_eq!(r2.replay.len(), 4);
        assert_eq!(r2.replay[3], JournalEvent::RunBilling);
        assert_eq!(r2.info.replayed_records, 4);
        assert_eq!(r2.durability.next_seq(), 5, "sequence numbers continue past replay");
    }

    #[test]
    fn checkpoint_truncates_journal_and_bounds_replay() {
        let dir = tmp_dir("checkpoint");
        let r = open(&dir);
        for _ in 0..5 {
            r.durability.record(JournalEvent::RunAuction).unwrap();
        }
        r.durability.checkpoint(PocState::default(), BTreeMap::new()).unwrap();
        // Two more after the checkpoint.
        r.durability.record(JournalEvent::RunBilling).unwrap();
        r.durability.record(JournalEvent::RunAuction).unwrap();
        drop(r);

        let r2 = open(&dir);
        assert_eq!(r2.snapshot.as_ref().unwrap().seq, 5);
        assert_eq!(r2.replay.len(), 2, "only post-checkpoint events replay");
        assert_eq!(r2.replay[0], JournalEvent::RunBilling);
        assert_eq!(r2.info.snapshot_seq, Some(5));
        assert_eq!(r2.info.skipped_records, 0, "journal was truncated");
        assert_eq!(r2.durability.next_seq(), 8);
    }

    #[test]
    fn crash_after_snapshot_before_truncate_skips_by_seq() {
        let dir = tmp_dir("skip-by-seq");
        let crash = CrashSwitch::new();
        let r = Durability::open(&config(&dir), 0xabc, crash.clone(), FsyncFault::new()).unwrap();
        for _ in 0..4 {
            r.durability.record(JournalEvent::RunAuction).unwrap();
        }
        crash.arm(CrashPoint::AfterSnapshotBeforeTruncate);
        let err = r.durability.checkpoint(PocState::default(), BTreeMap::new()).unwrap_err();
        assert!(matches!(err, JournalError::Crashed(CrashPoint::AfterSnapshotBeforeTruncate)));
        drop(r);

        // Snapshot is durable at seq 4; the journal still holds seqs 1–4.
        let r2 = open(&dir);
        assert_eq!(r2.snapshot.as_ref().unwrap().seq, 4);
        assert!(r2.replay.is_empty(), "snapshotted records must not replay (exactly-once)");
        assert_eq!(r2.info.skipped_records, 4);
        assert_eq!(r2.durability.next_seq(), 5);
    }

    #[test]
    fn torn_tail_is_reported_and_truncated() {
        let dir = tmp_dir("torn");
        let r = open(&dir);
        r.durability.record(JournalEvent::RunAuction).unwrap();
        r.durability.record(JournalEvent::RunBilling).unwrap();
        drop(r);
        // Tear the tail by hand.
        let path = journal_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let r2 = open(&dir);
        assert!(r2.info.torn_tail);
        assert_eq!(r2.replay.len(), 1, "torn record is gone, prefix survives");
        assert_eq!(r2.durability.next_seq(), 2);
    }

    #[test]
    fn wrong_fingerprint_is_refused() {
        let dir = tmp_dir("fingerprint");
        let r = open(&dir);
        r.durability.record(JournalEvent::RunAuction).unwrap();
        r.durability.checkpoint(PocState::default(), BTreeMap::new()).unwrap();
        drop(r);

        let err =
            match Durability::open(&config(&dir), 0xdead, CrashSwitch::new(), FsyncFault::new()) {
                Ok(_) => panic!("a snapshot from a different topology was accepted"),
                Err(e) => e,
            };
        assert!(matches!(err, RecoveryError::TopologyMismatch { expected: 0xdead, found: 0xabc }));
    }

    #[test]
    fn wants_checkpoint_follows_cadence() {
        let dir = tmp_dir("cadence");
        let mut cfg = config(&dir);
        cfg.snapshot_every = 2;
        let r = Durability::open(&cfg, 0xabc, CrashSwitch::new(), FsyncFault::new()).unwrap();
        assert!(!r.durability.wants_checkpoint());
        r.durability.record(JournalEvent::RunAuction).unwrap();
        assert!(!r.durability.wants_checkpoint());
        r.durability.record(JournalEvent::RunAuction).unwrap();
        assert!(r.durability.wants_checkpoint());
        r.durability.checkpoint(PocState::default(), BTreeMap::new()).unwrap();
        assert!(!r.durability.wants_checkpoint());
    }

    #[test]
    fn recovery_info_round_trips_on_the_wire() {
        let info = RecoveryInfo {
            snapshot_seq: Some(9),
            replayed_records: 3,
            skipped_records: 1,
            torn_tail: true,
            skipped_snapshots: 2,
        };
        let back: RecoveryInfo =
            serde_json::from_slice(&serde_json::to_vec(&info).unwrap()).unwrap();
        assert_eq!(back, info);
    }
}

//! The POC controller: a TCP server wrapping [`poc_core::Poc`].
//!
//! One tokio task per connection; all state behind a single async mutex.
//! Auction rounds hold the lock for their duration — control-plane rounds
//! are rare (monthly in the paper's economics) so serialization is the
//! right simplicity trade-off for a prototype. Shutdown is cooperative via
//! a watch channel; the accept loop and every connection task exit when it
//! fires.

use crate::codec::{read_frame, write_frame, CodecError};
use crate::proto::{
    AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response,
};
use poc_core::entity::EntityId;
use poc_core::poc::Poc;
use poc_traffic::TrafficMatrix;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{watch, Mutex};

/// Shared controller state.
struct State {
    poc: Poc,
    /// Upper-bound traffic matrix for auction rounds.
    tm: TrafficMatrix,
    /// Usage reported since the last billing cycle.
    usage: BTreeMap<EntityId, f64>,
}

/// The server. Construct with [`PocServer::bind`], then [`PocServer::run`]
/// (or spawn it) and keep the [`ServerHandle`] for shutdown.
pub struct PocServer {
    listener: TcpListener,
    state: Arc<Mutex<State>>,
    shutdown_rx: watch::Receiver<bool>,
}

/// Handle for stopping a running server.
pub struct ServerHandle {
    shutdown_tx: watch::Sender<bool>,
    pub local_addr: SocketAddr,
}

impl ServerHandle {
    /// Signal the server (accept loop + connections) to stop.
    pub fn shutdown(&self) {
        let _ = self.shutdown_tx.send(true);
    }
}

impl PocServer {
    /// Bind on `addr` (use port 0 for an ephemeral port).
    pub async fn bind(
        addr: &str,
        poc: Poc,
        tm: TrafficMatrix,
    ) -> std::io::Result<(Self, ServerHandle)> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let state = Arc::new(Mutex::new(State { poc, tm, usage: BTreeMap::new() }));
        Ok((
            Self { listener, state, shutdown_rx },
            ServerHandle { shutdown_tx, local_addr },
        ))
    }

    /// Accept-and-serve until shutdown.
    pub async fn run(self) {
        let mut shutdown = self.shutdown_rx.clone();
        loop {
            tokio::select! {
                accepted = self.listener.accept() => {
                    match accepted {
                        Ok((stream, _peer)) => {
                            let state = Arc::clone(&self.state);
                            let conn_shutdown = self.shutdown_rx.clone();
                            tokio::spawn(async move {
                                let _ = serve_connection(stream, state, conn_shutdown).await;
                            });
                        }
                        Err(_) => break,
                    }
                }
                _ = shutdown.changed() => {
                    if *shutdown.borrow() {
                        break;
                    }
                }
            }
        }
    }
}

async fn serve_connection(
    mut stream: TcpStream,
    state: Arc<Mutex<State>>,
    mut shutdown: watch::Receiver<bool>,
) -> Result<(), CodecError> {
    loop {
        let request: Request = tokio::select! {
            r = read_frame(&mut stream) => match r {
                Ok(req) => req,
                Err(CodecError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            },
            _ = shutdown.changed() => {
                if *shutdown.borrow() {
                    return Ok(());
                }
                continue;
            }
        };
        let response = handle(&state, request).await;
        write_frame(&mut stream, &response).await?;
    }
}

async fn handle(state: &Arc<Mutex<State>>, request: Request) -> Response {
    let mut st = state.lock().await;
    match request {
        Request::Ping => Response::Pong,
        Request::Attach { name, role } => {
            let result = match role {
                AttachRole::Lmp { router } => st.poc.attach_lmp(&name, router),
                AttachRole::DirectCsp { router } => st.poc.attach_direct_csp(&name, router),
                AttachRole::HostedCsp { via_lmp } => st.poc.attach_hosted_csp(&name, via_lmp),
            };
            match result {
                Ok(entity) => Response::Welcome { entity },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::RunAuction => {
            let tm = st.tm.clone();
            match st.poc.run_auction_round(&tm) {
                Ok(out) => Response::AuctionDone(summarize(out)),
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetOutcome => Response::Outcome(st.poc.last_outcome().map(summarize)),
        Request::ReportUsage { entity, gbps } => {
            if !gbps.is_finite() || gbps < 0.0 {
                return Response::Error { message: "invalid usage".into() };
            }
            if !st.poc.registry().may_send_traffic(entity) {
                return Response::Error {
                    message: format!("{entity} is not authorized to send traffic"),
                };
            }
            *st.usage.entry(entity).or_insert(0.0) += gbps;
            Response::Ack
        }
        Request::RunBilling => {
            let usage: Vec<(EntityId, f64)> =
                st.usage.iter().map(|(&e, &g)| (e, g)).collect();
            match st.poc.billing_cycle(&usage) {
                Ok(summary) => {
                    st.usage.clear();
                    Response::BillingDone(BillingSummaryWire {
                        period: summary.period,
                        total_outlay: summary.total_outlay,
                        unit_price: summary.unit_price,
                        poc_net: summary.poc_net,
                        charges: summary.charges,
                    })
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetBalance { entity } => Response::Balance {
            entity,
            balance: st.poc.ledger().balance(poc_core::settlement::Account::Entity(entity)),
        },
        Request::ReviewPolicy { policy } => Response::PolicyVerdict(st.poc.review_policy(&policy)),
        Request::GetPath { from, to } => match st.poc.member_path(from, to) {
            Ok(links) => Response::Path {
                links: links.map(|ls| ls.into_iter().map(|l| l.0).collect()),
            },
            Err(e) => Response::Error { message: e.to_string() },
        },
        Request::RecallLink { bp, link, notice_periods } => {
            let found = st.poc.recall_link(
                poc_topology::BpId(bp),
                poc_topology::LinkId(link),
                notice_periods,
            );
            Response::RecallDone { found, reauction_needed: st.poc.reauction_needed() }
        }
        Request::GetLeases => Response::Leases(
            st.poc
                .leases()
                .leases()
                .iter()
                .map(|l| LeaseWire {
                    link: l.link.0,
                    bp: l.bp.0,
                    monthly_payment: l.monthly_payment,
                    state: match l.state {
                        poc_core::lease::LeaseState::Active => "active".into(),
                        poc_core::lease::LeaseState::Recalled { effective_period } => {
                            format!("recalled@{effective_period}")
                        }
                        poc_core::lease::LeaseState::Expired => "expired".into(),
                    },
                })
                .collect(),
        ),
    }
}

fn summarize(out: &poc_auction::AuctionOutcome) -> OutcomeSummary {
    OutcomeSummary {
        n_selected_links: out.selected.len(),
        total_cost: out.total_cost,
        total_payments: out.settlements.iter().map(|s| s.payment).sum(),
        settlements: out
            .settlements
            .iter()
            .map(|s| (s.bp.0, s.payment, s.pob()))
            .collect(),
    }
}

//! The POC controller: a TCP server wrapping [`poc_core::Poc`].
//!
//! One thread per connection; all state behind a single mutex. Auction
//! rounds hold the lock for their duration — control-plane rounds are rare
//! (monthly in the paper's economics) so serialization is the right
//! simplicity trade-off for a prototype. Shutdown is cooperative via an
//! [`AtomicBool`]: [`ServerHandle::shutdown`] sets the flag and pokes the
//! accept loop with a throwaway connection; connection threads observe the
//! flag between read attempts (reads run under a short timeout so a parked
//! thread notices within ~100 ms).
//!
//! # Robustness posture
//!
//! The controller is the trust anchor of the marketplace (§2, §3.2): it
//! must stay reachable while peers misbehave. [`ServerConfig`] bounds
//! every resource a peer can hold:
//!
//! * **connection cap** — at most `max_connections` concurrent
//!   connections; excess connects are answered with a single
//!   [`Response::Error`] frame and closed (`ctrl.conn.rejected`);
//! * **idle deadline** — a peer that goes silent (including a slowloris
//!   half-frame: valid length prefix, then nothing) is evicted after
//!   `idle_timeout` (`ctrl.conn.idle_evicted`) instead of parking a
//!   worker thread forever;
//! * **write deadline** — a peer that stops draining its receive window
//!   cannot stall a worker in `write` (`ctrl.write.timeouts`);
//! * **worker reaping** — finished connection threads are joined on
//!   every accept-loop turn (`ctrl.conn.reaped`), so the worker list
//!   stays proportional to *live* connections;
//! * **accept backoff** — a persistent `accept()` error (e.g. EMFILE)
//!   backs off exponentially instead of hot-spinning a core
//!   (`ctrl.accept.errors`).

use crate::codec::{read_frame, write_frame, CodecError};
use crate::journal::{CrashPoint, CrashSwitch, JournalError, JournalEvent};
use crate::proto::{AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response};
use crate::recovery::{Durability, DurabilityConfig, RecoveryInfo};
use parking_lot::Mutex;
use poc_core::entity::EntityId;
use poc_core::poc::Poc;
use poc_traffic::TrafficMatrix;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked connection read re-checks the shutdown flag (and
/// the idle deadline).
const READ_POLL: Duration = Duration::from_millis(100);

/// First accept-error backoff; doubles per consecutive error up to
/// [`ACCEPT_BACKOFF_MAX`], resets on the next successful accept.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Resource bounds for a running server. Defaults are generous enough
/// that the happy path never notices them; tests and hostile deployments
/// tighten them.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further connects get one
    /// `Response::Error` frame and an immediate close.
    pub max_connections: usize,
    /// A connection with no bytes received for this long is evicted.
    /// Covers both fully idle peers and slowloris half-frames.
    pub idle_timeout: Duration,
    /// Per-write deadline on responses (protects workers from a peer
    /// that never drains its socket).
    pub write_timeout: Duration,
    /// Persist state to a directory (write-ahead journal + snapshot
    /// checkpoints); `None` — the default — keeps everything in memory.
    pub durability: Option<DurabilityConfig>,
    /// Crash-injection switch checked along the durability path. Tests
    /// keep a clone and arm it; production leaves it unarmed.
    pub crash: CrashSwitch,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            durability: None,
            crash: CrashSwitch::new(),
        }
    }
}

/// Shared controller state.
struct State {
    poc: Poc,
    /// Upper-bound traffic matrix for auction rounds.
    tm: TrafficMatrix,
    /// Usage reported since the last billing cycle.
    usage: BTreeMap<EntityId, f64>,
    /// Journal + snapshot handle when the server persists state.
    durability: Option<Durability>,
    /// How startup recovery went (served via `GetRecovery`).
    recovery: Option<RecoveryInfo>,
}

/// The server. Construct with [`PocServer::bind`] (default limits) or
/// [`PocServer::bind_with`], then call [`PocServer::run`] (typically on
/// its own thread) and keep the [`ServerHandle`] for shutdown.
pub struct PocServer {
    listener: TcpListener,
    state: Arc<Mutex<State>>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    config: ServerConfig,
}

/// Handle for stopping a running server.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    pub local_addr: SocketAddr,
}

impl ServerHandle {
    /// Signal the server (accept loop + connections) to stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it is parked in accept(), so hand it one
        // last throwaway connection to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Connections currently being served by *this* server (the
    /// `ctrl.conn.active` gauge aggregates across servers in the
    /// process, this accessor does not). Drains to zero once
    /// [`PocServer::run`] returns.
    pub fn active_connections(&self) -> i64 {
        self.active.load(Ordering::SeqCst)
    }
}

/// Decrements the per-server active-connection count (and refreshes the
/// `ctrl.conn.active` gauge) when a connection thread exits, however it
/// exits.
struct ConnectionGuard {
    active: Arc<AtomicI64>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        poc_obs::gauge!("ctrl.conn.active").set(now as f64);
    }
}

impl PocServer {
    /// Bind on `addr` (use port 0 for an ephemeral port) with default
    /// [`ServerConfig`] limits.
    pub fn bind(addr: &str, poc: Poc, tm: TrafficMatrix) -> std::io::Result<(Self, ServerHandle)> {
        Self::bind_with(addr, poc, tm, ServerConfig::default())
    }

    /// Bind with explicit resource limits. When the config carries a
    /// [`DurabilityConfig`], the state directory is recovered *before*
    /// the first connection is accepted: the newest valid snapshot is
    /// restored wholesale and the journal suffix replayed through the
    /// same application path live requests take.
    pub fn bind_with(
        addr: &str,
        poc: Poc,
        tm: TrafficMatrix,
        config: ServerConfig,
    ) -> std::io::Result<(Self, ServerHandle)> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicI64::new(0));
        let mut state = State { poc, tm, usage: BTreeMap::new(), durability: None, recovery: None };
        if let Some(dcfg) = &config.durability {
            recover(&mut state, dcfg, config.crash.clone())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        let state = Arc::new(Mutex::new(state));
        Ok((
            Self {
                listener,
                state,
                shutdown: Arc::clone(&shutdown),
                active: Arc::clone(&active),
                config,
            },
            ServerHandle { shutdown, active, local_addr },
        ))
    }

    /// Accept-and-serve until shutdown. Returns once the accept loop has
    /// stopped and every connection thread has exited; the time spent
    /// draining those threads is recorded in the `ctrl.shutdown.drain`
    /// histogram.
    pub fn run(self) {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accept_backoff = ACCEPT_BACKOFF_START;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accept_backoff = ACCEPT_BACKOFF_START;
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Reap finished workers on every accepted connection:
                    // the handle list stays proportional to live
                    // connections instead of growing for the lifetime of
                    // the server. A finished thread joins instantly.
                    let before = workers.len();
                    workers.retain(|w| !w.is_finished());
                    let reaped = before - workers.len();
                    if reaped > 0 {
                        poc_obs::counter!("ctrl.conn.reaped").add(reaped as u64);
                    }
                    if self.active.load(Ordering::SeqCst) >= self.config.max_connections as i64 {
                        reject_over_capacity(stream, &self.config);
                        continue;
                    }
                    poc_obs::counter!("ctrl.conn.total").inc();
                    let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
                    poc_obs::gauge!("ctrl.conn.active").set(now as f64);
                    let guard = ConnectionGuard { active: Arc::clone(&self.active) };
                    let state = Arc::clone(&self.state);
                    let flag = Arc::clone(&self.shutdown);
                    let config = self.config.clone();
                    workers.push(std::thread::spawn(move || {
                        let _guard = guard;
                        let _ = serve_connection(stream, state, flag, &config);
                    }));
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // A persistent accept error (EMFILE, ENOBUFS, ...)
                    // must not hot-spin a core: back off exponentially
                    // while staying responsive to shutdown.
                    poc_obs::counter!("ctrl.accept.errors").inc();
                    std::thread::sleep(accept_backoff);
                    accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
            }
        }
        let drain_started = Instant::now();
        for w in workers {
            let _ = w.join();
        }
        poc_obs::histogram!("ctrl.shutdown.drain").record_duration(drain_started.elapsed());
        // Shutdown barrier: whatever the fsync policy deferred reaches
        // the platter before the process exits cleanly.
        if let Some(d) = self.state.lock().durability.as_mut() {
            let _ = d.sync();
        }
    }
}

/// Rebuild in-memory state from a state directory: restore the newest
/// valid snapshot, then replay the journal suffix through [`apply`] —
/// the same path live requests take, so an event that failed validation
/// live fails identically on replay.
fn recover(
    state: &mut State,
    config: &DurabilityConfig,
    crash: CrashSwitch,
) -> Result<(), crate::recovery::RecoveryError> {
    let started = Instant::now();
    let fingerprint = poc_core::poc::topology_fingerprint(state.poc.topo());
    let recovered = Durability::open(config, fingerprint, crash)?;
    if let Some(snapshot) = recovered.snapshot {
        state.poc.restore_state(snapshot.poc);
        state.usage = snapshot.usage;
    }
    for event in recovered.replay {
        let _ = apply(state, event.into_request());
    }
    state.durability = Some(recovered.durability);
    state.recovery = Some(recovered.info);
    poc_obs::histogram!("ctrl.recovery.time").record_duration(started.elapsed());
    Ok(())
}

/// Turn away a connection over the cap: one best-effort typed error
/// frame, then close. Runs inline in the accept loop, so the write
/// deadline (already set) is what keeps a malicious peer from stalling
/// accepts.
fn reject_over_capacity(mut stream: TcpStream, config: &ServerConfig) {
    poc_obs::counter!("ctrl.conn.rejected").inc();
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_frame(
        &mut stream,
        &Response::Error { message: "server at capacity, retry later".into() },
    );
}

/// [`Read`] adapter that turns a blocking stream into one that polls the
/// shutdown flag and enforces the idle deadline: reads run under
/// [`READ_POLL`] timeouts; once the shutdown flag is set an idle wait
/// surfaces as EOF (so the codec reports a clean `Closed` at a frame
/// boundary); and if no byte has arrived for `idle_timeout` the read
/// fails with a timeout error (surfaced by the codec as
/// [`CodecError::TimedOut`], evicting the connection). Partial reads are
/// preserved by the underlying `read`, so a poll timeout mid-frame never
/// corrupts framing.
struct ShutdownAwareReader<'a> {
    stream: &'a TcpStream,
    flag: &'a AtomicBool,
    idle_timeout: Duration,
    /// Last instant any byte arrived on this connection. Shared with
    /// [`serve_connection`] so idleness spans frame boundaries (a peer
    /// sending a half-frame and stalling is as idle as a silent one).
    last_byte: &'a mut Instant,
}

impl Read for ShutdownAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // `impl Read for &TcpStream` lets us read through the shared ref.
        let mut stream = self.stream;
        loop {
            match stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.flag.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                    if self.last_byte.elapsed() >= self.idle_timeout {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "idle deadline expired",
                        ));
                    }
                }
                Ok(n) => {
                    if n > 0 {
                        *self.last_byte = Instant::now();
                    }
                    return Ok(n);
                }
                other => return other,
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    state: Arc<Mutex<State>>,
    flag: Arc<AtomicBool>,
    config: &ServerConfig,
) -> Result<(), CodecError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut last_byte = Instant::now();
    loop {
        if flag.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut reader = ShutdownAwareReader {
            stream: &stream,
            flag: &flag,
            idle_timeout: config.idle_timeout,
            last_byte: &mut last_byte,
        };
        let request: Request = match read_frame(&mut reader) {
            Ok(req) => req,
            Err(CodecError::Closed) => return Ok(()),
            Err(CodecError::TimedOut) => {
                // Silent or slowloris peer: reclaim the thread. The
                // socket close is the eviction notice.
                poc_obs::counter!("ctrl.conn.idle_evicted").inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        poc_obs::counter!("ctrl.frames.read").inc();
        // Unwrap the trace envelope (if any) and root this request's
        // span tree: the client's id when it sent one, a fresh id
        // otherwise, so `poc trace` can attribute work even for
        // untraced peers. With the flight recorder disabled the guard
        // is a thread-local store and spans stay no-ops.
        let (trace_id, request) = match request {
            Request::Traced { trace_id, request } => (trace_id, *request),
            other => (poc_obs::trace::new_trace_id(), other),
        };
        let _trace = poc_obs::trace::start_trace(trace_id);
        // Per-variant latency: resolved through the registry each time —
        // fine at control-plane request rates (the lock-free-handle
        // discipline matters on the auction's pivot path, not here).
        // The span is both the latency measurement and the root of the
        // request's trace tree.
        let latency = poc_obs::global().histogram(request.metric_name());
        let root_span = poc_obs::Span::on(request.metric_name(), &latency);
        let outcome = handle(&state, request);
        drop(root_span);
        let response = match outcome {
            Ok(response) => response,
            Err(_crash) => {
                // An injected crash fired on the durability path: the
                // simulated process is dead. Stop the whole server and
                // drop this connection without a reply — the client sees
                // a transport error, leaving the outcome ambiguous,
                // exactly as a real mid-request crash would.
                poc_obs::counter!("ctrl.crash.injected").inc();
                flag.store(true, Ordering::SeqCst);
                if let Ok(addr) = stream.local_addr() {
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        };
        match write_frame(&mut stream, &response) {
            Ok(()) => {}
            Err(CodecError::TimedOut) => {
                // The peer stopped draining its window mid-response; the
                // frame is torn, so the connection is unusable.
                poc_obs::counter!("ctrl.write.timeouts").inc();
                return Err(CodecError::TimedOut);
            }
            Err(e) => return Err(e),
        }
        poc_obs::counter!("ctrl.frames.written").inc();
    }
}

/// Handle one request end-to-end: journal mutating events *before*
/// applying them (write-ahead discipline), apply, then cut a checkpoint
/// if the cadence says so. `Err(point)` means an armed [`CrashPoint`]
/// fired — the simulated process is dead and the caller must stop the
/// server without replying.
fn handle(state: &Arc<Mutex<State>>, request: Request) -> Result<Response, CrashPoint> {
    let mut st = state.lock();
    if st.durability.is_some() {
        if let Some(event) = JournalEvent::from_request(&request) {
            match st.durability.as_mut().expect("checked above").record(event) {
                Ok(_seq) => {}
                Err(JournalError::Crashed(p)) => return Err(p),
                Err(e) => {
                    // The write-ahead append failed: applying anyway
                    // would let memory diverge from disk, so refuse the
                    // mutation instead.
                    poc_obs::counter!("ctrl.journal.errors").inc();
                    return Ok(Response::Error { message: format!("durability failure: {e}") });
                }
            }
        }
    }
    let response = apply(&mut st, request);
    if st.durability.as_ref().is_some_and(Durability::wants_checkpoint) {
        let poc_state = st.poc.export_state();
        let usage = st.usage.clone();
        match st.durability.as_mut().expect("checked above").checkpoint(poc_state, usage) {
            Ok(()) => {}
            Err(JournalError::Crashed(p)) => return Err(p),
            Err(_) => {
                // A failed checkpoint is not fatal: the journal still
                // holds every event, recovery just replays more of them.
                poc_obs::counter!("ctrl.snapshot.errors").inc();
            }
        }
    }
    Ok(response)
}

/// Apply one request to in-memory state. Both live requests and journal
/// replay come through here, which is what makes replay deterministic.
fn apply(st: &mut State, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Attach { name, role } => {
            let result = match role {
                AttachRole::Lmp { router } => st.poc.attach_lmp(&name, router),
                AttachRole::DirectCsp { router } => st.poc.attach_direct_csp(&name, router),
                AttachRole::HostedCsp { via_lmp } => st.poc.attach_hosted_csp(&name, via_lmp),
            };
            match result {
                Ok(entity) => Response::Welcome { entity },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::RunAuction => {
            let tm = st.tm.clone();
            match st.poc.run_auction_round(&tm) {
                Ok(out) => Response::AuctionDone(summarize(out)),
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetOutcome => Response::Outcome(st.poc.last_outcome().map(summarize)),
        Request::ReportUsage { entity, gbps } => {
            if !gbps.is_finite() || gbps < 0.0 {
                return Response::Error { message: "invalid usage".into() };
            }
            if !st.poc.registry().may_send_traffic(entity) {
                return Response::Error {
                    message: format!("{entity} is not authorized to send traffic"),
                };
            }
            // Each report is finite, but the running sum across reports
            // can still overflow to +inf; reject the report that would
            // poison the billing cycle, keeping the accumulated total
            // finite.
            let current = st.usage.get(&entity).copied().unwrap_or(0.0);
            let total = current + gbps;
            if !total.is_finite() {
                return Response::Error {
                    message: format!("accumulated usage for {entity} would overflow"),
                };
            }
            st.usage.insert(entity, total);
            Response::Ack
        }
        Request::RunBilling => {
            let usage: Vec<(EntityId, f64)> = st.usage.iter().map(|(&e, &g)| (e, g)).collect();
            match st.poc.billing_cycle(&usage) {
                Ok(summary) => {
                    st.usage.clear();
                    Response::BillingDone(BillingSummaryWire {
                        period: summary.period,
                        total_outlay: summary.total_outlay,
                        unit_price: summary.unit_price,
                        poc_net: summary.poc_net,
                        charges: summary.charges,
                    })
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetBalance { entity } => Response::Balance {
            entity,
            balance: st.poc.ledger().balance(poc_core::settlement::Account::Entity(entity)),
        },
        Request::ReviewPolicy { policy } => Response::PolicyVerdict(st.poc.review_policy(&policy)),
        Request::GetPath { from, to } => match st.poc.member_path(from, to) {
            Ok(links) => {
                Response::Path { links: links.map(|ls| ls.into_iter().map(|l| l.0).collect()) }
            }
            Err(e) => Response::Error { message: e.to_string() },
        },
        Request::RecallLink { bp, link, notice_periods } => {
            let found = st.poc.recall_link(
                poc_topology::BpId(bp),
                poc_topology::LinkId(link),
                notice_periods,
            );
            Response::RecallDone { found, reauction_needed: st.poc.reauction_needed() }
        }
        // Snapshot the process-global registry: auction, flow, and
        // control-plane instruments all land there, so one scrape shows
        // the whole controller.
        Request::Metrics => Response::Metrics(poc_obs::global().snapshot()),
        // The envelope never reaches apply() from the wire (the serve
        // loop unwraps it before journaling), but replay safety demands
        // a total function: unwrap here too.
        Request::Traced { request, .. } => apply(st, *request),
        Request::Trace { trace_id, last_n } => {
            // A full ring serializes past MAX_FRAME; trim to the frame
            // budget keeping the longest spans (round, pivots, journal
            // appends survive — short flow leaves drop first).
            let budget = (crate::codec::MAX_FRAME as usize).saturating_sub(4096);
            Response::Traces(poc_obs::trace::trim_traces_to_bytes(
                poc_obs::trace::scrape(trace_id, last_n),
                budget,
            ))
        }
        Request::GetRecovery => Response::Recovery(st.recovery.clone()),
        Request::GetLeases => Response::Leases(
            st.poc
                .leases()
                .leases()
                .iter()
                .map(|l| LeaseWire {
                    link: l.link.0,
                    bp: l.bp.0,
                    monthly_payment: l.monthly_payment,
                    state: match l.state {
                        poc_core::lease::LeaseState::Active => "active".into(),
                        poc_core::lease::LeaseState::Recalled { effective_period } => {
                            format!("recalled@{effective_period}")
                        }
                        poc_core::lease::LeaseState::Expired => "expired".into(),
                    },
                })
                .collect(),
        ),
    }
}

fn summarize(out: &poc_auction::AuctionOutcome) -> OutcomeSummary {
    OutcomeSummary {
        n_selected_links: out.selected.len(),
        total_cost: out.total_cost,
        total_payments: out.settlements.iter().map(|s| s.payment).sum(),
        settlements: out.settlements.iter().map(|s| (s.bp.0, s.payment, s.pob())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_core::poc::PocConfig;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn test_state() -> (Arc<Mutex<State>>, EntityId) {
        let topo = two_bp_square();
        let tm = TrafficMatrix::zero(topo.n_routers());
        let mut poc = Poc::new(topo, PocConfig::default());
        let lmp = poc.attach_lmp("lmp", RouterId(0)).unwrap();
        let state = State { poc, tm, usage: BTreeMap::new(), durability: None, recovery: None };
        (Arc::new(Mutex::new(state)), lmp)
    }

    #[test]
    fn usage_accumulation_rejects_overflow_to_inf() {
        let (state, lmp) = test_state();
        // Each report is individually finite...
        let resp = handle(&state, Request::ReportUsage { entity: lmp, gbps: f64::MAX }).unwrap();
        assert_eq!(resp, Response::Ack);
        // ...but the one that would push the running sum to +inf is
        // rejected, and the stored total stays finite and unchanged.
        let resp = handle(&state, Request::ReportUsage { entity: lmp, gbps: f64::MAX }).unwrap();
        let Response::Error { message } = resp else { panic!("expected overflow error: {resp:?}") };
        assert!(message.contains("overflow"), "{message}");
        let total = state.lock().usage[&lmp];
        assert!(total.is_finite());
        assert_eq!(total, f64::MAX);
        // Reports that keep the total finite still go through.
        let resp = handle(&state, Request::ReportUsage { entity: lmp, gbps: 0.0 }).unwrap();
        assert_eq!(resp, Response::Ack);
    }

    #[test]
    fn usage_rejects_nonfinite_and_negative_reports() {
        let (state, lmp) = test_state();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let resp = handle(&state, Request::ReportUsage { entity: lmp, gbps: bad }).unwrap();
            assert!(matches!(resp, Response::Error { .. }), "{bad} accepted: {resp:?}");
        }
        assert!(state.lock().usage.is_empty());
    }
}

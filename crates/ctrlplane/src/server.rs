//! The POC controller: a TCP server wrapping [`poc_core::Poc`].
//!
//! The server core is a sharded, high-fanout pipeline:
//!
//! * **sharded accept** — `accept_shards` threads block in `accept()`
//!   on clones of one listener, each feeding a bounded pool of
//!   connection threads (the kernel load-balances wakeups);
//! * **admission control** — every request that does real work passes
//!   an admission gate bounding the number of requests in flight
//!   (`max_queue`); over the bound the server answers a typed
//!   [`Response::Busy`] instead of queueing unboundedly
//!   (`ctrl.admission.*` metrics). Health and observability requests
//!   (ping, metrics, trace scrapes, recovery info) bypass the gate so
//!   the controller stays inspectable under overload;
//! * **sharded state** — the usage ledger is sharded by entity
//!   (the `shard` module): concurrent `ReportUsage` requests on
//!   different shards proceed in parallel, touching neither the global lock nor
//!   each other. Global operations (attach, auction, billing, recall,
//!   policy review) serialize on the global lock, taking shard locks in
//!   a fixed order when they need usage state;
//! * **group commit** — durable mutations journal through
//!   [`crate::journal::GroupJournal`]: concurrent appends coalesce
//!   behind a commit leader so K mutations cost ~1 fsync instead of K.
//!
//! Shutdown is cooperative via an [`AtomicBool`]:
//! [`ServerHandle::shutdown`] sets the flag and pokes each accept
//! thread with a throwaway connection; connection threads observe the
//! flag between read attempts (reads run under a short timeout so a
//! parked thread notices within ~100 ms).
//!
//! # Robustness posture
//!
//! The controller is the trust anchor of the marketplace (§2, §3.2): it
//! must stay reachable while peers misbehave. [`ServerConfig`] bounds
//! every resource a peer can hold:
//!
//! * **connection cap** — at most `max_connections` concurrent
//!   connections; excess connects are answered with a single
//!   [`Response::Error`] frame and closed (`ctrl.conn.rejected`);
//! * **admission bound** — at most `max_queue` admitted requests in
//!   flight; excess requests get [`Response::Busy`] and the connection
//!   stays usable (`ctrl.admission.rejected`);
//! * **idle deadline** — a peer that goes silent (including a slowloris
//!   half-frame: valid length prefix, then nothing) is evicted after
//!   `idle_timeout` (`ctrl.conn.idle_evicted`) instead of parking a
//!   worker thread forever;
//! * **write deadline** — a peer that stops draining its receive window
//!   cannot stall a worker in `write` (`ctrl.write.timeouts`);
//! * **worker reaping** — finished connection threads are joined on
//!   every accept-loop turn (`ctrl.conn.reaped`), so the worker list
//!   stays proportional to *live* connections;
//! * **accept backoff** — a persistent `accept()` error (e.g. EMFILE)
//!   backs off exponentially instead of hot-spinning a core
//!   (`ctrl.accept.errors`).

use crate::codec::{read_frame, write_frame, CodecError};
use crate::journal::{CrashPoint, CrashSwitch, FsyncFault, JournalError, JournalEvent};
use crate::proto::{AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response};
use crate::recovery::{Durability, DurabilityConfig, RecoveryInfo};
use crate::shard::{merged_usage, restore_usage, Global, ShardedState, UsageShard};
use parking_lot::MutexGuard;
use poc_core::entity::EntityId;
use poc_core::poc::Poc;
use poc_traffic::TrafficMatrix;
use std::cell::Cell;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked connection read re-checks the shutdown flag (and
/// the idle deadline).
const READ_POLL: Duration = Duration::from_millis(100);

/// First accept-error backoff; doubles per consecutive error up to
/// [`ACCEPT_BACKOFF_MAX`], resets on the next successful accept.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Retry hint carried by [`Response::Busy`]: long enough that a retry
/// probably finds a free slot, short enough not to crater throughput.
const BUSY_RETRY_MS: u64 = 5;

/// Resource bounds for a running server. Defaults are generous enough
/// that the happy path never notices them; tests and hostile deployments
/// tighten them.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further connects get one
    /// `Response::Error` frame and an immediate close.
    pub max_connections: usize,
    /// A connection with no bytes received for this long is evicted.
    /// Covers both fully idle peers and slowloris half-frames.
    pub idle_timeout: Duration,
    /// Per-write deadline on responses (protects workers from a peer
    /// that never drains its socket).
    pub write_timeout: Duration,
    /// Persist state to a directory (write-ahead journal + snapshot
    /// checkpoints); `None` — the default — keeps everything in memory.
    pub durability: Option<DurabilityConfig>,
    /// Crash-injection switch checked along the durability path. Tests
    /// keep a clone and arm it; production leaves it unarmed.
    pub crash: CrashSwitch,
    /// Usage-ledger shards (see the `shard` module); ≥ 1.
    pub shards: usize,
    /// Admission bound: maximum requests in flight before the server
    /// answers [`Response::Busy`].
    pub max_queue: usize,
    /// Threads blocked in `accept()` on clones of the listener; ≥ 1.
    pub accept_shards: usize,
    /// Fsync fault injector for the group-commit path. Tests keep a
    /// clone and arm it; production leaves it unarmed.
    pub fsync_fault: FsyncFault,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            durability: None,
            crash: CrashSwitch::new(),
            shards: 8,
            max_queue: 1024,
            accept_shards: 2,
            fsync_fault: FsyncFault::new(),
        }
    }
}

/// Counting admission gate: a fixed budget of in-flight requests,
/// acquired with a CAS loop (fail-fast — an over-budget request is
/// rejected immediately, never queued).
struct Admission {
    depth: AtomicI64,
    max_queue: i64,
}

impl Admission {
    fn new(max_queue: usize) -> Self {
        Self { depth: AtomicI64::new(0), max_queue: max_queue.max(1) as i64 }
    }

    /// Try to admit one request; `None` means over budget.
    fn try_admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut cur = self.depth.load(Ordering::SeqCst);
        loop {
            if cur >= self.max_queue {
                poc_obs::counter!("ctrl.admission.rejected").inc();
                return None;
            }
            match self.depth.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    poc_obs::counter!("ctrl.admission.admitted").inc();
                    poc_obs::gauge!("ctrl.admission.depth").set((cur + 1) as f64);
                    return Some(AdmissionPermit { depth: &self.depth });
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// Releases one admission slot on drop, however the request ends.
struct AdmissionPermit<'a> {
    depth: &'a AtomicI64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let now = self.depth.fetch_sub(1, Ordering::SeqCst) - 1;
        poc_obs::gauge!("ctrl.admission.depth").set(now as f64);
    }
}

/// Everything a connection thread needs: sharded state, the durability
/// handle (internally synchronized — group commit), recovery info, and
/// the admission gate.
pub(crate) struct Shared {
    pub(crate) state: ShardedState,
    /// Journal + snapshot handle when the server persists state.
    pub(crate) durability: Option<Durability>,
    /// How startup recovery went (served via `GetRecovery`).
    pub(crate) recovery: Option<RecoveryInfo>,
    admission: Admission,
}

/// The server. Construct with [`PocServer::bind`] (default limits) or
/// [`PocServer::bind_with`], then call [`PocServer::run`] (typically on
/// its own thread) and keep the [`ServerHandle`] for shutdown.
pub struct PocServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    config: ServerConfig,
}

/// Handle for stopping a running server.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    accept_shards: usize,
    pub local_addr: SocketAddr,
}

impl ServerHandle {
    /// Signal the server (accept loops + connections) to stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept threads: each is parked in accept(), so hand
        // every one a throwaway connection to observe the flag.
        for _ in 0..self.accept_shards {
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// Connections currently being served by *this* server (the
    /// `ctrl.conn.active` gauge aggregates across servers in the
    /// process, this accessor does not). Drains to zero once
    /// [`PocServer::run`] returns.
    pub fn active_connections(&self) -> i64 {
        self.active.load(Ordering::SeqCst)
    }
}

/// Decrements the per-server active-connection count (and refreshes the
/// `ctrl.conn.active` gauge) when a connection thread exits, however it
/// exits.
struct ConnectionGuard {
    active: Arc<AtomicI64>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        poc_obs::gauge!("ctrl.conn.active").set(now as f64);
    }
}

impl PocServer {
    /// Bind on `addr` (use port 0 for an ephemeral port) with default
    /// [`ServerConfig`] limits.
    pub fn bind(addr: &str, poc: Poc, tm: TrafficMatrix) -> std::io::Result<(Self, ServerHandle)> {
        Self::bind_with(addr, poc, tm, ServerConfig::default())
    }

    /// Bind with explicit resource limits. When the config carries a
    /// [`DurabilityConfig`], the state directory is recovered *before*
    /// the first connection is accepted: the newest valid snapshot is
    /// restored wholesale and the journal suffix replayed through the
    /// same application path live requests take.
    pub fn bind_with(
        addr: &str,
        poc: Poc,
        tm: TrafficMatrix,
        config: ServerConfig,
    ) -> std::io::Result<(Self, ServerHandle)> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicI64::new(0));
        let mut shared = Shared {
            state: ShardedState::new(poc, tm, config.shards),
            durability: None,
            recovery: None,
            admission: Admission::new(config.max_queue),
        };
        if let Some(dcfg) = &config.durability {
            recover(&mut shared, dcfg, config.crash.clone(), config.fsync_fault.clone())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        poc_obs::gauge!("ctrl.shards").set(shared.state.n_shards() as f64);
        let accept_shards = config.accept_shards.max(1);
        Ok((
            Self {
                listener,
                shared: Arc::new(shared),
                shutdown: Arc::clone(&shutdown),
                active: Arc::clone(&active),
                config,
            },
            ServerHandle { shutdown, active, accept_shards, local_addr },
        ))
    }

    /// Accept-and-serve until shutdown. Returns once every accept loop
    /// has stopped and every connection thread has exited; the time
    /// spent draining those threads is recorded in the
    /// `ctrl.shutdown.drain` histogram.
    pub fn run(self) {
        let extra: Vec<TcpListener> = (1..self.config.accept_shards.max(1))
            .filter_map(|_| self.listener.try_clone().ok())
            .collect();
        let shared = &self.shared;
        let shutdown = &self.shutdown;
        let active = &self.active;
        let config = &self.config;
        std::thread::scope(|s| {
            let siblings: Vec<_> = extra
                .iter()
                .map(|l| s.spawn(move || accept_loop(l, shared, shutdown, active, config)))
                .collect();
            accept_loop(&self.listener, shared, shutdown, active, config);
            let drain_started = Instant::now();
            for sib in siblings {
                let _ = sib.join();
            }
            poc_obs::histogram!("ctrl.shutdown.drain").record_duration(drain_started.elapsed());
        });
        // Shutdown barrier: whatever the fsync policy deferred reaches
        // the platter before the process exits cleanly.
        if let Some(d) = &self.shared.durability {
            let _ = d.sync();
        }
    }
}

/// One accept thread: accept, reap, cap-check, spawn a connection
/// worker. Joins its own workers before returning (shutdown drain).
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
    active: &Arc<AtomicI64>,
    config: &ServerConfig,
) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accept_backoff = ACCEPT_BACKOFF_START;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                accept_backoff = ACCEPT_BACKOFF_START;
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Reap finished workers on every accepted connection:
                // the handle list stays proportional to live
                // connections instead of growing for the lifetime of
                // the server. A finished thread joins instantly.
                let before = workers.len();
                workers.retain(|w| !w.is_finished());
                let reaped = before - workers.len();
                if reaped > 0 {
                    poc_obs::counter!("ctrl.conn.reaped").add(reaped as u64);
                }
                // CAS the active count upward so concurrent accept
                // threads can never jointly overshoot the cap.
                if !try_reserve_slot(active, config.max_connections as i64) {
                    reject_over_capacity(stream, config);
                    continue;
                }
                poc_obs::counter!("ctrl.conn.total").inc();
                let guard = ConnectionGuard { active: Arc::clone(active) };
                let shared = Arc::clone(shared);
                let flag = Arc::clone(shutdown);
                let config = config.clone();
                workers.push(std::thread::spawn(move || {
                    let _guard = guard;
                    let _ = serve_connection(stream, shared, flag, &config);
                }));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // A persistent accept error (EMFILE, ENOBUFS, ...)
                // must not hot-spin a core: back off exponentially
                // while staying responsive to shutdown.
                poc_obs::counter!("ctrl.accept.errors").inc();
                std::thread::sleep(accept_backoff);
                accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Reserve one connection slot iff the cap allows it (CAS loop, updates
/// the `ctrl.conn.active` gauge on success).
fn try_reserve_slot(active: &AtomicI64, max: i64) -> bool {
    let mut cur = active.load(Ordering::SeqCst);
    loop {
        if cur >= max {
            return false;
        }
        match active.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                poc_obs::gauge!("ctrl.conn.active").set((cur + 1) as f64);
                return true;
            }
            Err(now) => cur = now,
        }
    }
}

/// Rebuild in-memory state from a state directory: restore the newest
/// valid snapshot, then replay the journal suffix through [`apply`] —
/// the same path live requests take, so an event that failed validation
/// live fails identically on replay.
fn recover(
    shared: &mut Shared,
    config: &DurabilityConfig,
    crash: CrashSwitch,
    fault: FsyncFault,
) -> Result<(), crate::recovery::RecoveryError> {
    let started = Instant::now();
    let fingerprint = {
        let g = shared.state.global.lock();
        poc_core::poc::topology_fingerprint(g.poc.topo())
    };
    let recovered = Durability::open(config, fingerprint, crash, fault)?;
    if let Some(snapshot) = recovered.snapshot {
        let (mut g, mut shards) = shared.state.lock_all();
        g.poc.restore_state(snapshot.poc);
        restore_usage(&mut shards, snapshot.usage);
        // The snapshot restored the registry wholesale; rebuild the
        // per-shard authorization cache to match. Journal replay below
        // maintains it incrementally through apply_attach, exactly as
        // live attaches do.
        for shard in shards.iter_mut() {
            shard.authorized.clear();
        }
        for entity in g.poc.registry().iter() {
            if g.poc.registry().may_send_traffic(entity.id) {
                let idx = entity.id.0 as usize % shards.len();
                shards[idx].authorized.insert(entity.id);
            }
        }
    }
    // Transition records replay through their dedicated tracker (a step
    // is a fragment of a BeginTransition, not a request of its own);
    // everything else goes through the live application path.
    let mut txn = crate::transition::ReplayTracker::default();
    for event in recovered.replay {
        if txn.absorb(shared, &event) {
            continue;
        }
        if let Some(request) = event.into_request() {
            let _ = apply(shared, request);
        }
    }
    shared.durability = Some(recovered.durability);
    shared.recovery = Some(recovered.info);
    // A journal ending mid-transition: resume it toward the target or
    // roll it back, journaling as we go (a crash here is just another
    // recoverable crash — the failed open surfaces as an io error).
    if let Some(open) = txn.take_open() {
        crate::transition::finish_open_transition(shared, open).map_err(|p| {
            crate::recovery::RecoveryError::Io(std::io::Error::other(format!(
                "crash injected during transition recovery: {}",
                p.label()
            )))
        })?;
    }
    poc_obs::histogram!("ctrl.recovery.time").record_duration(started.elapsed());
    Ok(())
}

/// Turn away a connection over the cap: one best-effort typed error
/// frame, then close. Runs inline in the accept loop, so the write
/// deadline (already set) is what keeps a malicious peer from stalling
/// accepts.
fn reject_over_capacity(mut stream: TcpStream, config: &ServerConfig) {
    poc_obs::counter!("ctrl.conn.rejected").inc();
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_frame(
        &mut stream,
        &Response::Error { message: "server at capacity, retry later".into() },
    );
}

/// [`Read`] adapter that turns a blocking stream into one that polls the
/// shutdown flag and enforces the idle deadline: reads run under
/// [`READ_POLL`] timeouts; once the shutdown flag is set an idle wait
/// surfaces as EOF (so the codec reports a clean `Closed` at a frame
/// boundary); and if no byte has arrived for `idle_timeout` the read
/// fails with a timeout error (surfaced by the codec as
/// [`CodecError::TimedOut`], evicting the connection). Partial reads are
/// preserved by the underlying `read`, so a poll timeout mid-frame never
/// corrupts framing.
struct ShutdownAwareReader<'a> {
    stream: &'a TcpStream,
    flag: &'a AtomicBool,
    idle_timeout: Duration,
    /// Last instant any byte arrived on this connection. Shared with
    /// [`serve_connection`] so idleness spans frame boundaries (a peer
    /// sending a half-frame and stalling is as idle as a silent one).
    /// A `Cell` so the reader can live inside a persistent `BufReader`
    /// while the connection loop keeps observing it.
    last_byte: &'a Cell<Instant>,
}

impl std::io::Read for ShutdownAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // `impl Read for &TcpStream` lets us read through the shared ref.
        let mut stream = self.stream;
        loop {
            match stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.flag.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                    if self.last_byte.get().elapsed() >= self.idle_timeout {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "idle deadline expired",
                        ));
                    }
                }
                Ok(n) => {
                    if n > 0 {
                        self.last_byte.set(Instant::now());
                    }
                    return Ok(n);
                }
                other => return other,
            }
        }
    }
}

/// Whether a request bypasses the admission gate: health and
/// observability must stay reachable while the controller sheds load.
fn admission_exempt(request: &Request) -> bool {
    matches!(
        request,
        Request::Ping | Request::Metrics | Request::Trace { .. } | Request::GetRecovery
    )
}

fn serve_connection(
    stream: TcpStream,
    shared: Arc<Shared>,
    flag: Arc<AtomicBool>,
    config: &ServerConfig,
) -> Result<(), CodecError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let last_byte = Cell::new(Instant::now());
    // Persistent buffered reader: a request's length prefix and payload
    // usually arrive in one segment, so framing costs one `read(2)`
    // instead of two. The buffer outlives frame boundaries, so a
    // pipelined next frame is served from memory.
    let mut reader = std::io::BufReader::with_capacity(
        4096,
        ShutdownAwareReader {
            stream: &stream,
            flag: &flag,
            idle_timeout: config.idle_timeout,
            last_byte: &last_byte,
        },
    );
    loop {
        if flag.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request: Request = match read_frame(&mut reader) {
            Ok(req) => req,
            Err(CodecError::Closed) => return Ok(()),
            Err(CodecError::TimedOut) => {
                // Silent or slowloris peer: reclaim the thread. The
                // socket close is the eviction notice.
                poc_obs::counter!("ctrl.conn.idle_evicted").inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        poc_obs::counter!("ctrl.frames.read").inc();
        // Unwrap the trace envelope (if any) and root this request's
        // span tree: the client's id when it sent one, a fresh id
        // otherwise, so `poc trace` can attribute work even for
        // untraced peers. With the flight recorder disabled the guard
        // is a thread-local store and spans stay no-ops.
        let (trace_id, request) = match request {
            Request::Traced { trace_id, request } => (trace_id, *request),
            other => (poc_obs::trace::new_trace_id(), other),
        };
        let _trace = poc_obs::trace::start_trace(trace_id);
        // Per-variant latency: resolved through the registry each time —
        // fine at control-plane request rates (the lock-free-handle
        // discipline matters on the auction's pivot path, not here).
        // The span is both the latency measurement and the root of the
        // request's trace tree.
        let latency = poc_obs::global().histogram(request.metric_name());
        let root_span = poc_obs::Span::on(request.metric_name(), &latency);
        // Admission: bound the requests in flight. Rejection happens
        // *before* any journaling or state change, so a Busy answer is
        // always safe to retry — even for non-idempotent mutations.
        let permit = if admission_exempt(&request) {
            None
        } else {
            let _adm = poc_obs::span!("ctrl.admission");
            match shared.admission.try_admit() {
                Some(p) => Some(p),
                None => {
                    drop(root_span);
                    let busy = Response::Busy { retry_after_ms: BUSY_RETRY_MS };
                    match write_frame(&mut &stream, &busy) {
                        Ok(()) => {
                            poc_obs::counter!("ctrl.frames.written").inc();
                            continue;
                        }
                        Err(CodecError::TimedOut) => {
                            poc_obs::counter!("ctrl.write.timeouts").inc();
                            return Err(CodecError::TimedOut);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        // Checkpoint outside the request's own locks: the cadence check
        // is cheap, and a due checkpoint takes every state lock itself.
        let outcome =
            handle(&shared, request).and_then(|resp| maybe_checkpoint(&shared).map(|()| resp));
        drop(permit);
        drop(root_span);
        let response = match outcome {
            Ok(response) => response,
            Err(_crash) => {
                // An injected crash fired on the durability path: the
                // simulated process is dead. Stop the whole server and
                // drop this connection without a reply — the client sees
                // a transport error, leaving the outcome ambiguous,
                // exactly as a real mid-request crash would.
                poc_obs::counter!("ctrl.crash.injected").inc();
                flag.store(true, Ordering::SeqCst);
                if let Ok(addr) = stream.local_addr() {
                    // Wake every accept thread so they observe the flag.
                    for _ in 0..config.accept_shards.max(1) {
                        let _ = TcpStream::connect(addr);
                    }
                }
                return Ok(());
            }
        };
        match write_frame(&mut &stream, &response) {
            Ok(()) => {}
            Err(CodecError::TimedOut) => {
                // The peer stopped draining its window mid-response; the
                // frame is torn, so the connection is unusable.
                poc_obs::counter!("ctrl.write.timeouts").inc();
                return Err(CodecError::TimedOut);
            }
            Err(e) => return Err(e),
        }
        poc_obs::counter!("ctrl.frames.written").inc();
    }
}

/// Journal one mutating event (write-ahead discipline), waiting for its
/// group commit. `Ok(Some(response))` is a typed refusal: the append or
/// its fsync failed, the mutation was *not* persisted, and the caller
/// must return the error without applying. `Err(point)` means an armed
/// [`CrashPoint`] fired.
pub(crate) fn journal_event(
    shared: &Shared,
    event: JournalEvent,
) -> Result<Option<Response>, CrashPoint> {
    let Some(d) = &shared.durability else { return Ok(None) };
    match d.record(event) {
        Ok(_seq) => Ok(None),
        Err(JournalError::Crashed(p)) => Err(p),
        Err(e) => {
            // The write-ahead append (or the group-commit fsync
            // covering it) failed: applying anyway would let memory
            // diverge from disk, so refuse the mutation instead. A
            // whole coalesced batch failing lands every member here —
            // nobody in a failed batch is ever acked.
            poc_obs::counter!("ctrl.journal.errors").inc();
            Ok(Some(Response::Error { message: format!("durability failure: {e}") }))
        }
    }
}

/// Cut a checkpoint if the cadence says so. Takes the global lock and
/// every shard lock, so the snapshot's sequence number is exact: no
/// mutation can journal or apply while the snapshot is cut.
fn maybe_checkpoint(shared: &Shared) -> Result<(), CrashPoint> {
    let Some(d) = &shared.durability else { return Ok(()) };
    if !d.wants_checkpoint() {
        return Ok(());
    }
    let (g, shards) = shared.state.lock_all();
    // Re-check under the locks: a concurrent request may have cut the
    // checkpoint while this one waited.
    if !d.wants_checkpoint() {
        return Ok(());
    }
    let poc_state = g.poc.export_state();
    let usage = merged_usage(&shards);
    match d.checkpoint(poc_state, usage) {
        Ok(()) => Ok(()),
        Err(JournalError::Crashed(p)) => Err(p),
        Err(_) => {
            // A failed checkpoint is not fatal: the journal still
            // holds every event, recovery just replays more of them.
            poc_obs::counter!("ctrl.snapshot.errors").inc();
            Ok(())
        }
    }
}

/// Handle one request end-to-end: route it to the locks it needs,
/// journal mutating events *before* applying them (under those same
/// locks — the determinism contract in [`crate::shard`]), then apply.
/// `Err(point)` means an armed [`CrashPoint`] fired — the simulated
/// process is dead and the caller must stop the server without
/// replying.
fn handle(shared: &Shared, request: Request) -> Result<Response, CrashPoint> {
    match request {
        // Lock-free: health and observability.
        Request::Ping => Ok(Response::Pong),
        Request::Metrics => Ok(Response::Metrics(poc_obs::global().snapshot())),
        Request::Trace { trace_id, last_n } => {
            // A full ring serializes past MAX_FRAME; trim to the frame
            // budget keeping the longest spans (round, pivots, journal
            // appends survive — short flow leaves drop first).
            let budget = (crate::codec::MAX_FRAME as usize).saturating_sub(4096);
            Ok(Response::Traces(poc_obs::trace::trim_traces_to_bytes(
                poc_obs::trace::scrape(trace_id, last_n),
                budget,
            )))
        }
        Request::GetRecovery => Ok(Response::Recovery(shared.recovery.clone())),
        // The envelope never reaches handle() from the wire (the serve
        // loop unwraps it), but replay safety demands a total function.
        Request::Traced { request, .. } => handle(shared, *request),
        // The hot path: one shard lock, no global state.
        Request::ReportUsage { entity, gbps } => {
            let _span = poc_obs::span!("ctrl.shard.apply", op = "report_usage");
            let mut shard = shared.state.shard(entity).lock();
            if let Some(refusal) =
                journal_event(shared, JournalEvent::ReportUsage { entity, gbps })?
            {
                return Ok(refusal);
            }
            Ok(apply_usage(&mut shard, entity, gbps))
        }
        // Global mutations that touch usage/authorization state take
        // every lock; the rest take only the global lock.
        Request::Attach { name, role } => {
            let (mut g, mut shards) = shared.state.lock_all();
            if let Some(refusal) = journal_event(
                shared,
                JournalEvent::Attach { name: name.clone(), role: role.clone() },
            )? {
                return Ok(refusal);
            }
            Ok(apply_attach(&mut g, &mut shards, &name, &role))
        }
        Request::RunBilling => {
            let (mut g, mut shards) = shared.state.lock_all();
            if let Some(refusal) = journal_event(shared, JournalEvent::RunBilling)? {
                return Ok(refusal);
            }
            Ok(apply_billing(&mut g, &mut shards))
        }
        Request::RunAuction => {
            let mut g = shared.state.global.lock();
            if let Some(refusal) = journal_event(shared, JournalEvent::RunAuction)? {
                return Ok(refusal);
            }
            Ok(apply_auction(&mut g))
        }
        Request::RecallLink { bp, link, notice_periods } => {
            let mut g = shared.state.global.lock();
            if let Some(refusal) =
                journal_event(shared, JournalEvent::RecallLink { bp, link, notice_periods })?
            {
                return Ok(refusal);
            }
            let found = g.poc.recall_link(
                poc_topology::BpId(bp),
                poc_topology::LinkId(link),
                notice_periods,
            );
            Ok(Response::RecallDone { found, reauction_needed: g.poc.reauction_needed() })
        }
        Request::ReviewPolicy { policy } => {
            let mut g = shared.state.global.lock();
            if let Some(refusal) =
                journal_event(shared, JournalEvent::ReviewPolicy { policy: policy.clone() })?
            {
                return Ok(refusal);
            }
            Ok(Response::PolicyVerdict(g.poc.review_policy(&policy)))
        }
        Request::BeginTransition { max_extra_links, demand_scale } => {
            // The whole migration runs under the global lock: planning,
            // per-step journaling, and lease-book mutation. Concurrent
            // requests queue behind it exactly as they do for an
            // auction round.
            let mut g = shared.state.global.lock();
            crate::transition::run_transition(shared, &mut g, max_extra_links, demand_scale)
        }
        Request::TransitionStatus => {
            let g = shared.state.global.lock();
            Ok(Response::Transition(g.last_transition.clone()))
        }
        // Global reads.
        Request::GetOutcome => {
            let g = shared.state.global.lock();
            Ok(Response::Outcome(g.poc.last_outcome().map(summarize)))
        }
        Request::GetBalance { entity } => {
            let g = shared.state.global.lock();
            Ok(Response::Balance {
                entity,
                balance: g.poc.ledger().balance(poc_core::settlement::Account::Entity(entity)),
            })
        }
        Request::GetPath { from, to } => {
            let g = shared.state.global.lock();
            Ok(match g.poc.member_path(from, to) {
                Ok(links) => {
                    Response::Path { links: links.map(|ls| ls.into_iter().map(|l| l.0).collect()) }
                }
                Err(e) => Response::Error { message: e.to_string() },
            })
        }
        Request::GetLeases => {
            let g = shared.state.global.lock();
            Ok(Response::Leases(
                g.poc
                    .leases()
                    .leases()
                    .iter()
                    .map(|l| LeaseWire {
                        link: l.link.0,
                        bp: l.bp.0,
                        monthly_payment: l.monthly_payment,
                        state: match l.state {
                            poc_core::lease::LeaseState::Active => "active".into(),
                            poc_core::lease::LeaseState::Recalled { effective_period } => {
                                format!("recalled@{effective_period}")
                            }
                            poc_core::lease::LeaseState::Expired => "expired".into(),
                        },
                    })
                    .collect(),
            ))
        }
    }
}

/// Apply one request to in-memory state *without* journaling: the
/// journal-replay path. Live requests go through [`handle`], which
/// journals first and then applies through the same `apply_*` functions
/// below — that shared tail is what makes replay deterministic.
fn apply(shared: &Shared, request: Request) -> Response {
    match request {
        Request::ReportUsage { entity, gbps } => {
            let mut shard = shared.state.shard(entity).lock();
            apply_usage(&mut shard, entity, gbps)
        }
        Request::Attach { name, role } => {
            let (mut g, mut shards) = shared.state.lock_all();
            apply_attach(&mut g, &mut shards, &name, &role)
        }
        Request::RunBilling => {
            let (mut g, mut shards) = shared.state.lock_all();
            apply_billing(&mut g, &mut shards)
        }
        Request::RunAuction => {
            let mut g = shared.state.global.lock();
            apply_auction(&mut g)
        }
        Request::RecallLink { bp, link, notice_periods } => {
            let mut g = shared.state.global.lock();
            let found = g.poc.recall_link(
                poc_topology::BpId(bp),
                poc_topology::LinkId(link),
                notice_periods,
            );
            Response::RecallDone { found, reauction_needed: g.poc.reauction_needed() }
        }
        Request::ReviewPolicy { policy } => {
            let mut g = shared.state.global.lock();
            Response::PolicyVerdict(g.poc.review_policy(&policy))
        }
        Request::Traced { request, .. } => apply(shared, *request),
        // Non-mutating requests are never journaled, and BeginTransition
        // replays through the transition tracker (its journal events have
        // no request form) — but replay safety demands a total function.
        other => Response::Error { message: format!("not a mutation: {}", other.name()) },
    }
}

/// Validate and record one usage report on its shard. Validation runs
/// *after* journaling (live and on replay alike): a journaled report
/// that failed validation live fails identically when replayed.
fn apply_usage(shard: &mut UsageShard, entity: EntityId, gbps: f64) -> Response {
    if !gbps.is_finite() || gbps < 0.0 {
        return Response::Error { message: "invalid usage".into() };
    }
    if !shard.authorized.contains(&entity) {
        return Response::Error { message: format!("{entity} is not authorized to send traffic") };
    }
    // Each report is finite, but the running sum across reports can
    // still overflow to +inf; reject the report that would poison the
    // billing cycle, keeping the accumulated total finite.
    let current = shard.usage.get(&entity).copied().unwrap_or(0.0);
    let total = current + gbps;
    if !total.is_finite() {
        return Response::Error {
            message: format!("accumulated usage for {entity} would overflow"),
        };
    }
    shard.usage.insert(entity, total);
    Response::Ack
}

/// Attach a member and, on success, seed its shard's authorization
/// cache (the verdict is fixed at attach time — see [`crate::shard`]).
fn apply_attach(
    g: &mut Global,
    shards: &mut [MutexGuard<'_, UsageShard>],
    name: &str,
    role: &AttachRole,
) -> Response {
    let result = match role {
        AttachRole::Lmp { router } => g.poc.attach_lmp(name, *router),
        AttachRole::DirectCsp { router } => g.poc.attach_direct_csp(name, *router),
        AttachRole::HostedCsp { via_lmp } => g.poc.attach_hosted_csp(name, *via_lmp),
    };
    match result {
        Ok(entity) => {
            if g.poc.registry().may_send_traffic(entity) {
                let idx = entity.0 as usize % shards.len();
                shards[idx].authorized.insert(entity);
            }
            Response::Welcome { entity }
        }
        Err(e) => Response::Error { message: e.to_string() },
    }
}

fn apply_auction(g: &mut Global) -> Response {
    let tm = g.tm.clone();
    match g.poc.run_auction_round(&tm) {
        Ok(out) => Response::AuctionDone(summarize(out)),
        Err(e) => Response::Error { message: e.to_string() },
    }
}

/// Drain every shard's usage into one billing cycle. Holding every
/// shard lock makes the cycle atomic with respect to concurrent
/// reports: a report either lands in this cycle or the next, never
/// half in each.
fn apply_billing(g: &mut Global, shards: &mut [MutexGuard<'_, UsageShard>]) -> Response {
    let merged = merged_usage(shards);
    let usage: Vec<(EntityId, f64)> = merged.into_iter().collect();
    match g.poc.billing_cycle(&usage) {
        Ok(summary) => {
            for shard in shards.iter_mut() {
                shard.usage.clear();
            }
            Response::BillingDone(BillingSummaryWire {
                period: summary.period,
                total_outlay: summary.total_outlay,
                unit_price: summary.unit_price,
                poc_net: summary.poc_net,
                charges: summary.charges,
            })
        }
        Err(e) => Response::Error { message: e.to_string() },
    }
}

fn summarize(out: &poc_auction::AuctionOutcome) -> OutcomeSummary {
    OutcomeSummary {
        n_selected_links: out.selected.len(),
        total_cost: out.total_cost,
        total_payments: out.settlements.iter().map(|s| s.payment).sum(),
        settlements: out.settlements.iter().map(|s| (s.bp.0, s.payment, s.pob())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_core::poc::PocConfig;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn test_shared() -> (Shared, EntityId) {
        let topo = two_bp_square();
        let tm = TrafficMatrix::zero(topo.n_routers());
        let mut poc = Poc::new(topo, PocConfig::default());
        let lmp = poc.attach_lmp("lmp", RouterId(0)).unwrap();
        let shared = Shared {
            state: ShardedState::new(poc, tm, 4),
            durability: None,
            recovery: None,
            admission: Admission::new(16),
        };
        (shared, lmp)
    }

    fn usage_total(shared: &Shared, entity: EntityId) -> Option<f64> {
        shared.state.shard(entity).lock().usage.get(&entity).copied()
    }

    #[test]
    fn usage_accumulation_rejects_overflow_to_inf() {
        let (shared, lmp) = test_shared();
        // Each report is individually finite...
        let resp = handle(&shared, Request::ReportUsage { entity: lmp, gbps: f64::MAX }).unwrap();
        assert_eq!(resp, Response::Ack);
        // ...but the one that would push the running sum to +inf is
        // rejected, and the stored total stays finite and unchanged.
        let resp = handle(&shared, Request::ReportUsage { entity: lmp, gbps: f64::MAX }).unwrap();
        let Response::Error { message } = resp else { panic!("expected overflow error: {resp:?}") };
        assert!(message.contains("overflow"), "{message}");
        let total = usage_total(&shared, lmp).unwrap();
        assert!(total.is_finite());
        assert_eq!(total, f64::MAX);
        // Reports that keep the total finite still go through.
        let resp = handle(&shared, Request::ReportUsage { entity: lmp, gbps: 0.0 }).unwrap();
        assert_eq!(resp, Response::Ack);
    }

    #[test]
    fn usage_rejects_nonfinite_and_negative_reports() {
        let (shared, lmp) = test_shared();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let resp = handle(&shared, Request::ReportUsage { entity: lmp, gbps: bad }).unwrap();
            assert!(matches!(resp, Response::Error { .. }), "{bad} accepted: {resp:?}");
        }
        assert!(usage_total(&shared, lmp).is_none());
    }

    #[test]
    fn admission_gate_bounds_in_flight_requests() {
        let gate = Admission::new(2);
        let p1 = gate.try_admit();
        let p2 = gate.try_admit();
        assert!(p1.is_some() && p2.is_some());
        assert!(gate.try_admit().is_none(), "third request over a budget of 2");
        drop(p1);
        assert!(gate.try_admit().is_some(), "released slot is reusable");
    }

    #[test]
    fn billing_drains_usage_across_shards() {
        let (shared, lmp) = test_shared();
        let csp = {
            let resp = handle(
                &shared,
                Request::Attach {
                    name: "csp".into(),
                    role: AttachRole::HostedCsp { via_lmp: lmp },
                },
            )
            .unwrap();
            let Response::Welcome { entity } = resp else { panic!("attach failed: {resp:?}") };
            entity
        };
        assert_ne!(
            shared.state.shard_index(lmp),
            shared.state.shard_index(csp),
            "test wants usage on two distinct shards"
        );
        let resp = handle(&shared, Request::RunAuction).unwrap();
        assert!(matches!(resp, Response::AuctionDone(_)), "auction failed: {resp:?}");
        handle(&shared, Request::ReportUsage { entity: lmp, gbps: 5.0 }).unwrap();
        handle(&shared, Request::ReportUsage { entity: csp, gbps: 7.0 }).unwrap();
        let resp = handle(&shared, Request::RunBilling).unwrap();
        let Response::BillingDone(summary) = resp else { panic!("billing failed: {resp:?}") };
        assert!((summary.charges.iter().map(|c| c.1).sum::<f64>()).is_finite());
        assert!(usage_total(&shared, lmp).is_none(), "billing drains every shard");
        assert!(usage_total(&shared, csp).is_none());
    }
}

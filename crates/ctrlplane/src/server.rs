//! The POC controller: a TCP server wrapping [`poc_core::Poc`].
//!
//! One thread per connection; all state behind a single mutex. Auction
//! rounds hold the lock for their duration — control-plane rounds are rare
//! (monthly in the paper's economics) so serialization is the right
//! simplicity trade-off for a prototype. Shutdown is cooperative via an
//! [`AtomicBool`]: [`ServerHandle::shutdown`] sets the flag and pokes the
//! accept loop with a throwaway connection; connection threads observe the
//! flag between read attempts (reads run under a short timeout so a parked
//! thread notices within ~100 ms).

use crate::codec::{read_frame, write_frame, CodecError};
use crate::proto::{AttachRole, BillingSummaryWire, LeaseWire, OutcomeSummary, Request, Response};
use parking_lot::Mutex;
use poc_core::entity::EntityId;
use poc_core::poc::Poc;
use poc_traffic::TrafficMatrix;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked connection read re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Shared controller state.
struct State {
    poc: Poc,
    /// Upper-bound traffic matrix for auction rounds.
    tm: TrafficMatrix,
    /// Usage reported since the last billing cycle.
    usage: BTreeMap<EntityId, f64>,
}

/// The server. Construct with [`PocServer::bind`], then call
/// [`PocServer::run`] (typically on its own thread) and keep the
/// [`ServerHandle`] for shutdown.
pub struct PocServer {
    listener: TcpListener,
    state: Arc<Mutex<State>>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
}

/// Handle for stopping a running server.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    pub local_addr: SocketAddr,
}

impl ServerHandle {
    /// Signal the server (accept loop + connections) to stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it is parked in accept(), so hand it one
        // last throwaway connection to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Connections currently being served by *this* server (the
    /// `ctrl.conn.active` gauge aggregates across servers in the
    /// process, this accessor does not). Drains to zero once
    /// [`PocServer::run`] returns.
    pub fn active_connections(&self) -> i64 {
        self.active.load(Ordering::SeqCst)
    }
}

/// Decrements the per-server active-connection count (and refreshes the
/// `ctrl.conn.active` gauge) when a connection thread exits, however it
/// exits.
struct ConnectionGuard {
    active: Arc<AtomicI64>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        poc_obs::gauge!("ctrl.conn.active").set(now as f64);
    }
}

impl PocServer {
    /// Bind on `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, poc: Poc, tm: TrafficMatrix) -> std::io::Result<(Self, ServerHandle)> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicI64::new(0));
        let state = Arc::new(Mutex::new(State { poc, tm, usage: BTreeMap::new() }));
        Ok((
            Self { listener, state, shutdown: Arc::clone(&shutdown), active: Arc::clone(&active) },
            ServerHandle { shutdown, active, local_addr },
        ))
    }

    /// Accept-and-serve until shutdown. Returns once the accept loop has
    /// stopped and every connection thread has exited; the time spent
    /// draining those threads is recorded in the `ctrl.shutdown.drain`
    /// histogram.
    pub fn run(self) {
        let mut workers = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    poc_obs::counter!("ctrl.conn.total").inc();
                    let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
                    poc_obs::gauge!("ctrl.conn.active").set(now as f64);
                    let guard = ConnectionGuard { active: Arc::clone(&self.active) };
                    let state = Arc::clone(&self.state);
                    let flag = Arc::clone(&self.shutdown);
                    workers.push(std::thread::spawn(move || {
                        let _guard = guard;
                        let _ = serve_connection(stream, state, flag);
                    }));
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        }
        let drain_started = Instant::now();
        for w in workers {
            let _ = w.join();
        }
        poc_obs::histogram!("ctrl.shutdown.drain").record_duration(drain_started.elapsed());
    }
}

/// [`Read`] adapter that turns a blocking stream into one that polls the
/// shutdown flag: reads run under [`READ_POLL`] timeouts, and once the
/// flag is set an idle wait surfaces as EOF (so the codec reports a clean
/// `Closed` at a frame boundary). Partial reads are preserved by the
/// underlying `read`, so a timeout mid-frame never corrupts framing.
struct ShutdownAwareReader<'a> {
    stream: &'a TcpStream,
    flag: &'a AtomicBool,
}

impl Read for ShutdownAwareReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // `impl Read for &TcpStream` lets us read through the shared ref.
        let mut stream = self.stream;
        loop {
            match stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.flag.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    state: Arc<Mutex<State>>,
    flag: Arc<AtomicBool>,
) -> Result<(), CodecError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    loop {
        if flag.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut reader = ShutdownAwareReader { stream: &stream, flag: &flag };
        let request: Request = match read_frame(&mut reader) {
            Ok(req) => req,
            Err(CodecError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        poc_obs::counter!("ctrl.frames.read").inc();
        // Per-variant latency: the name is dynamic, so this resolves
        // through the registry each time — fine at control-plane request
        // rates (the lock-free-handle discipline matters on the auction's
        // pivot path, not here).
        let latency = poc_obs::global().histogram(&format!("ctrl.request.{}", request.name()));
        let started = Instant::now();
        let response = handle(&state, request);
        latency.record_duration(started.elapsed());
        write_frame(&mut stream, &response)?;
        poc_obs::counter!("ctrl.frames.written").inc();
    }
}

fn handle(state: &Arc<Mutex<State>>, request: Request) -> Response {
    let mut st = state.lock();
    match request {
        Request::Ping => Response::Pong,
        Request::Attach { name, role } => {
            let result = match role {
                AttachRole::Lmp { router } => st.poc.attach_lmp(&name, router),
                AttachRole::DirectCsp { router } => st.poc.attach_direct_csp(&name, router),
                AttachRole::HostedCsp { via_lmp } => st.poc.attach_hosted_csp(&name, via_lmp),
            };
            match result {
                Ok(entity) => Response::Welcome { entity },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::RunAuction => {
            let tm = st.tm.clone();
            match st.poc.run_auction_round(&tm) {
                Ok(out) => Response::AuctionDone(summarize(out)),
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetOutcome => Response::Outcome(st.poc.last_outcome().map(summarize)),
        Request::ReportUsage { entity, gbps } => {
            if !gbps.is_finite() || gbps < 0.0 {
                return Response::Error { message: "invalid usage".into() };
            }
            if !st.poc.registry().may_send_traffic(entity) {
                return Response::Error {
                    message: format!("{entity} is not authorized to send traffic"),
                };
            }
            *st.usage.entry(entity).or_insert(0.0) += gbps;
            Response::Ack
        }
        Request::RunBilling => {
            let usage: Vec<(EntityId, f64)> = st.usage.iter().map(|(&e, &g)| (e, g)).collect();
            match st.poc.billing_cycle(&usage) {
                Ok(summary) => {
                    st.usage.clear();
                    Response::BillingDone(BillingSummaryWire {
                        period: summary.period,
                        total_outlay: summary.total_outlay,
                        unit_price: summary.unit_price,
                        poc_net: summary.poc_net,
                        charges: summary.charges,
                    })
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::GetBalance { entity } => Response::Balance {
            entity,
            balance: st.poc.ledger().balance(poc_core::settlement::Account::Entity(entity)),
        },
        Request::ReviewPolicy { policy } => Response::PolicyVerdict(st.poc.review_policy(&policy)),
        Request::GetPath { from, to } => match st.poc.member_path(from, to) {
            Ok(links) => {
                Response::Path { links: links.map(|ls| ls.into_iter().map(|l| l.0).collect()) }
            }
            Err(e) => Response::Error { message: e.to_string() },
        },
        Request::RecallLink { bp, link, notice_periods } => {
            let found = st.poc.recall_link(
                poc_topology::BpId(bp),
                poc_topology::LinkId(link),
                notice_periods,
            );
            Response::RecallDone { found, reauction_needed: st.poc.reauction_needed() }
        }
        // Snapshot the process-global registry: auction, flow, and
        // control-plane instruments all land there, so one scrape shows
        // the whole controller.
        Request::Metrics => Response::Metrics(poc_obs::global().snapshot()),
        Request::GetLeases => Response::Leases(
            st.poc
                .leases()
                .leases()
                .iter()
                .map(|l| LeaseWire {
                    link: l.link.0,
                    bp: l.bp.0,
                    monthly_payment: l.monthly_payment,
                    state: match l.state {
                        poc_core::lease::LeaseState::Active => "active".into(),
                        poc_core::lease::LeaseState::Recalled { effective_period } => {
                            format!("recalled@{effective_period}")
                        }
                        poc_core::lease::LeaseState::Expired => "expired".into(),
                    },
                })
                .collect(),
        ),
    }
}

fn summarize(out: &poc_auction::AuctionOutcome) -> OutcomeSummary {
    OutcomeSummary {
        n_selected_links: out.selected.len(),
        total_cost: out.total_cost,
        total_payments: out.settlements.iter().map(|s| s.payment).sum(),
        settlements: out.settlements.iter().map(|s| (s.bp.0, s.payment, s.pob())).collect(),
    }
}

//! Crash-injection tests: a live server is killed at every defined
//! [`CrashPoint`] and restarted from its state directory; ledger
//! balances, the lease book, and the last auction outcome must come
//! back identical, with no event applied twice.
//!
//! The crash is simulated, not `abort()`: the armed [`CrashSwitch`]
//! makes the durability layer stop at the chosen point leaving exactly
//! the on-disk wreckage a real death there would (torn record, orphan
//! snapshot tmp, un-truncated journal), the server stops without
//! replying, and the test restarts a fresh server on the same
//! directory — which is precisely what a supervisor restarting a
//! crashed controller process does.

use poc_core::entity::EntityId;
use poc_core::poc::{Poc, PocConfig};
use poc_ctrlplane::server::ServerConfig;
use poc_ctrlplane::{
    AttachRole, ClientError, CrashPoint, CrashSwitch, DurabilityConfig, FsyncPolicy, PocClient,
    PocServer, RecoveryInfo, ServerHandle,
};
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

fn build_world() -> (poc_topology::PocTopology, TrafficMatrix) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(1), RouterId(2), 5.0);
    (topo, tm)
}

/// Start a server persisting to `state_dir`. `snapshot_every == 0`
/// means journal-only (no checkpoints).
fn start_durable(
    state_dir: &Path,
    snapshot_every: u64,
    crash: CrashSwitch,
) -> (ServerHandle, JoinHandle<()>) {
    start_durable_sharded(state_dir, snapshot_every, crash, ServerConfig::default().shards)
}

/// [`start_durable`] with an explicit usage-shard count, for the
/// sharding/recovery equivalence property below.
fn start_durable_sharded(
    state_dir: &Path,
    snapshot_every: u64,
    crash: CrashSwitch,
    shards: usize,
) -> (ServerHandle, JoinHandle<()>) {
    let (topo, tm) = build_world();
    let poc = Poc::new(topo, PocConfig::default());
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            state_dir: state_dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every,
        }),
        crash,
        shards,
        ..ServerConfig::default()
    };
    let (server, handle) = PocServer::bind_with("127.0.0.1:0", poc, tm, config).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn start_in_memory() -> (ServerHandle, JoinHandle<()>) {
    let (topo, tm) = build_world();
    let poc = Poc::new(topo, PocConfig::default());
    let (server, handle) = PocServer::bind("127.0.0.1:0", poc, tm).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poc-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The lifecycle every test drives before the crash: two LMPs, an
/// auction, usage reports. Returns the two entity ids.
fn run_setup(client: &mut PocClient) -> (EntityId, EntityId) {
    let a = client.attach("lmp-a", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    let b = client.attach("lmp-b", AttachRole::Lmp { router: RouterId(1) }).unwrap();
    let outcome = client.run_auction().unwrap();
    assert!(outcome.n_selected_links > 0);
    client.report_usage(a, 12.0).unwrap();
    client.report_usage(b, 8.0).unwrap();
    (a, b)
}

/// What the uninterrupted lifecycle (setup + billing) leaves behind:
/// the reference every crashed-and-recovered server is held to.
struct Reference {
    outcome: poc_ctrlplane::proto::OutcomeSummary,
    leases: Vec<poc_ctrlplane::proto::LeaseWire>,
    balance_a: f64,
    balance_b: f64,
}

fn reference_run() -> Reference {
    let (handle, join) = start_in_memory();
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let (a, b) = run_setup(&mut client);
    client.run_billing().unwrap();
    let reference = Reference {
        outcome: client.outcome().unwrap().unwrap(),
        leases: client.leases().unwrap(),
        balance_a: client.balance(a).unwrap(),
        balance_b: client.balance(b).unwrap(),
    };
    handle.shutdown();
    let _ = join.join();
    reference
}

#[test]
fn clean_restart_preserves_lifecycle_state() {
    let dir = fresh_dir("clean-restart");
    let reference = reference_run();

    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let (a, b) = run_setup(&mut client);
    client.run_billing().unwrap();
    handle.shutdown();
    let _ = join.join();

    // Restart from the state directory: everything must be back.
    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    assert_eq!(client.outcome().unwrap().unwrap(), reference.outcome);
    assert_eq!(client.leases().unwrap(), reference.leases);
    assert_eq!(client.balance(a).unwrap(), reference.balance_a);
    assert_eq!(client.balance(b).unwrap(), reference.balance_b);

    // The recovery report is served over the wire: 6 events (2 attach,
    // 1 auction, 2 usage, 1 billing) replayed from a clean journal.
    let info = client.recovery_info().unwrap().unwrap();
    assert_eq!(
        info,
        RecoveryInfo {
            snapshot_seq: None,
            replayed_records: 6,
            skipped_records: 0,
            torn_tail: false,
            skipped_snapshots: 0,
        }
    );

    // Recovery instrumentation reached the metrics registry (shared
    // across tests in this process, so >= not ==).
    let metrics = client.metrics().unwrap();
    assert!(metrics.counter("ctrl.recovery.replayed_records").unwrap_or(0) >= 6);
    assert!(metrics.counter("ctrl.journal.appends").unwrap_or(0) >= 6);
    assert!(metrics.counter("ctrl.journal.fsyncs").unwrap_or(0) >= 1);
    handle.shutdown();
    let _ = join.join();
}

/// Kill a live server at `point` while it executes `RunBilling`,
/// restart from the same directory, and return (client, pre-crash
/// outcome, pre-crash leases, recovery info, handles) for assertions.
fn crash_and_recover(
    point: CrashPoint,
    snapshot_every: u64,
) -> (PocClient, Reference, RecoveryInfo, EntityId, EntityId, ServerHandle, JoinHandle<()>) {
    let dir = fresh_dir(point.label());
    let crash = CrashSwitch::new();
    let (handle, join) = start_durable(&dir, snapshot_every, crash.clone());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let (a, b) = run_setup(&mut client);
    let pre_outcome = client.outcome().unwrap().unwrap();
    let pre_leases = client.leases().unwrap();

    // Arm the crash and fire the mutation that hits it. The client must
    // see a transport-level failure (never a served reply): the
    // simulated process died before answering.
    crash.arm(point);
    let err = client.run_billing().unwrap_err();
    assert!(
        !matches!(err, ClientError::Server(_) | ClientError::Protocol(_)),
        "{point:?}: crashed request must fail at the transport, got {err:?}"
    );
    // The injected crash stops the whole server, as death would.
    let _ = join.join();

    // Supervisor restart: same directory, fresh process.
    let (handle, join) = start_durable(&dir, snapshot_every, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let info = client.recovery_info().unwrap().unwrap();
    let reference =
        Reference { outcome: pre_outcome, leases: pre_leases, balance_a: 0.0, balance_b: 0.0 };
    (client, reference, info, a, b, handle, join)
}

#[test]
fn crash_mid_append_loses_only_the_unacknowledged_event() {
    let (mut client, pre, info, a, b, handle, join) = crash_and_recover(CrashPoint::MidAppend, 0);
    // The billing record was torn mid-write: it was never acknowledged,
    // so after recovery it must be absent — balances untouched...
    assert_eq!(client.balance(a).unwrap(), 0.0);
    assert_eq!(client.balance(b).unwrap(), 0.0);
    // ...while everything acknowledged before it survived.
    assert_eq!(client.outcome().unwrap().unwrap(), pre.outcome);
    assert_eq!(client.leases().unwrap(), pre.leases);
    assert!(info.torn_tail, "mid-append crash must leave a (truncated) torn tail");
    assert_eq!(info.replayed_records, 5, "2 attach + 1 auction + 2 usage");

    // The usage reports survived, so re-issuing the lost billing now
    // settles the same charges the uninterrupted run produced.
    let uninterrupted = reference_run();
    client.run_billing().unwrap();
    assert_eq!(client.balance(a).unwrap(), uninterrupted.balance_a);
    assert_eq!(client.balance(b).unwrap(), uninterrupted.balance_b);
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn crash_after_append_applies_the_ambiguous_event_exactly_once() {
    let (mut client, pre, info, a, b, handle, join) = crash_and_recover(CrashPoint::AfterAppend, 0);
    // The record was durable before the reply was lost: recovery must
    // apply it exactly once — balances equal the uninterrupted run's,
    // not zero (lost) and not double (replayed twice).
    let uninterrupted = reference_run();
    assert_eq!(client.balance(a).unwrap(), uninterrupted.balance_a);
    assert_eq!(client.balance(b).unwrap(), uninterrupted.balance_b);
    assert_eq!(client.outcome().unwrap().unwrap(), pre.outcome);
    assert_eq!(client.leases().unwrap(), pre.leases);
    assert!(!info.torn_tail);
    assert_eq!(info.replayed_records, 6, "the ambiguous billing event replays once");
    handle.shutdown();
    let _ = join.join();
}

/// The three snapshot-path crashes share the exactly-once assertion;
/// what differs is the wreckage recovery has to pick through.
fn assert_snapshot_crash_recovers(point: CrashPoint) -> RecoveryInfo {
    // snapshot_every = 1: every mutation checkpoints, so the armed
    // point fires during the billing request's checkpoint.
    let (mut client, pre, info, a, b, handle, join) = crash_and_recover(point, 1);
    let uninterrupted = reference_run();
    assert_eq!(client.balance(a).unwrap(), uninterrupted.balance_a, "{point:?}");
    assert_eq!(client.balance(b).unwrap(), uninterrupted.balance_b, "{point:?}");
    assert_eq!(client.outcome().unwrap().unwrap(), pre.outcome, "{point:?}");
    assert_eq!(client.leases().unwrap(), pre.leases, "{point:?}");
    handle.shutdown();
    let _ = join.join();
    info
}

#[test]
fn crash_mid_snapshot_rename_recovers_from_previous_generation() {
    let info = assert_snapshot_crash_recovers(CrashPoint::MidSnapshotRename);
    // The orphan `.tmp` is ignored; the previous checkpoint (seq 5) plus
    // the journaled billing record rebuild the state.
    assert_eq!(info.snapshot_seq, Some(5));
    assert_eq!(info.replayed_records, 1);
    assert_eq!(info.skipped_snapshots, 0, "an orphan tmp is not a snapshot generation");
}

#[test]
fn crash_with_torn_snapshot_falls_back_past_the_corrupt_generation() {
    let info = assert_snapshot_crash_recovers(CrashPoint::TornSnapshotWrite);
    // The newest generation is torn at its final name: recovery must
    // detect the bad CRC, skip it, and fall back.
    assert_eq!(info.skipped_snapshots, 1, "the torn generation was detected and skipped");
    assert_eq!(info.snapshot_seq, Some(5));
    assert_eq!(info.replayed_records, 1);
}

#[test]
fn crash_after_snapshot_before_truncate_skips_snapshotted_records() {
    let info = assert_snapshot_crash_recovers(CrashPoint::AfterSnapshotBeforeTruncate);
    // The snapshot (seq 6) is durable but the journal still holds the
    // billing record: it must be skipped by sequence number, never
    // applied on top of a snapshot that already contains it.
    assert_eq!(info.snapshot_seq, Some(6));
    assert_eq!(info.skipped_records, 1, "exactly-once: the snapshotted record is not replayed");
    assert_eq!(info.replayed_records, 0);
}

#[test]
fn every_defined_crash_point_is_exercised() {
    // The five tests above cover CrashPoint::ALL; this guards the next
    // person who adds a variant and forgets the integration test.
    assert_eq!(CrashPoint::ALL.len(), 5);
}

#[test]
fn state_dir_from_a_different_topology_is_refused() {
    let dir = fresh_dir("fingerprint");
    // Seed the directory with a checkpoint from the standard world.
    let (handle, join) = start_durable(&dir, 1, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.attach("lmp-a", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    handle.shutdown();
    let _ = join.join();

    // A server for a *different* topology must refuse to boot from it:
    // replaying this journal against that topology would be nonsense.
    let topo = two_bp_square(); // no external ISPs ⇒ different fingerprint
    let tm = TrafficMatrix::zero(topo.n_routers());
    let poc = Poc::new(topo, PocConfig::default());
    let config =
        ServerConfig { durability: Some(DurabilityConfig::new(&dir)), ..ServerConfig::default() };
    let err = match PocServer::bind_with("127.0.0.1:0", poc, tm, config) {
        Ok(_) => panic!("a state dir from a different topology was accepted"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("different controller instance"), "{err}");
}

// ---------------------------------------------------------------------------
// Lease transitions: multi-record journal transactions. One
// `BeginTransition` at demand scale 12 on this world journals exactly
// four records — Begun, Step(+l10), Step(-l0), Committed — so the tests
// below can kill the server at *every* record boundary of the
// transaction and demand recovery lands on exactly one of the two
// consistent states: the pre-transition set or the committed target.
// ---------------------------------------------------------------------------

/// The demand scale whose auction target differs from the 1× set on
/// [`build_world`]: {l0, l1} → {l1, l10}, a two-step migration.
const SHIFTED_SCALE: f64 = 12.0;

#[test]
fn committed_transition_survives_restart_and_reverses() {
    let dir = fresh_dir("txn-lifecycle");
    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    run_setup(&mut client);

    // Migrate onto the set the auction selects at 12× forecast demand.
    let up = client.begin_transition(None, Some(SHIFTED_SCALE)).unwrap();
    assert_eq!(up.outcome, "committed");
    assert_eq!(up.steps_applied, 2, "one add + one remove on this world");
    assert_eq!((up.replans, up.rollbacks, up.recovered), (0, 0, false));
    assert_eq!(client.transition_status().unwrap().unwrap(), up);
    let outcome_up = client.outcome().unwrap().unwrap();
    let leases_up = client.leases().unwrap();
    handle.shutdown();
    let _ = join.join();

    // Restart: the journaled transition family replays into the same
    // committed state (5 setup records + Begun/Step/Step/Committed).
    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    assert_eq!(client.recovery_info().unwrap().unwrap().replayed_records, 9);
    assert_eq!(client.outcome().unwrap().unwrap(), outcome_up);
    assert_eq!(client.leases().unwrap(), leases_up);
    // A fully *replayed* (not resumed) transition leaves no status: the
    // summary is in-memory operator feedback, not recovered state.
    assert!(client.transition_status().unwrap().is_none());

    // And the migration reverses: back down to the live-demand set.
    let down = client.begin_transition(None, None).unwrap();
    assert_eq!(down.outcome, "committed");
    assert_eq!(down.steps_applied, 2);
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn noop_and_unplannable_transitions_keep_the_journal_consistent() {
    let dir = fresh_dir("txn-refused");
    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    run_setup(&mut client);
    let pre_outcome = client.outcome().unwrap().unwrap();
    let pre_leases = client.leases().unwrap();

    // 1× demand: the fabric is already on the auction's set — a noop
    // transition commits with zero steps (journal: Begun, Committed).
    let noop = client.begin_transition(None, None).unwrap();
    assert_eq!((noop.outcome.as_str(), noop.steps_applied), ("committed", 0));

    // With zero headroom links, the 12× swap must interleave removes
    // before adds — and dropping either live link first is infeasible:
    // the planner proves NoSafePlan, nothing is applied, and the journal
    // transaction closes with an abort record.
    let err = client.begin_transition(Some(0), Some(SHIFTED_SCALE)).unwrap_err();
    let ClientError::Server(message) = err else { panic!("expected typed refusal, got {err}") };
    assert!(message.contains("transition not started"), "{message}");
    assert_eq!(client.outcome().unwrap().unwrap(), pre_outcome);
    assert_eq!(client.leases().unwrap(), pre_leases);
    handle.shutdown();
    let _ = join.join();

    // Both closed transactions replay cleanly: 5 setup + 2 noop + 2
    // aborted records rebuild exactly the pre-crash state.
    let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    assert_eq!(client.recovery_info().unwrap().unwrap().replayed_records, 9);
    assert_eq!(client.outcome().unwrap().unwrap(), pre_outcome);
    assert_eq!(client.leases().unwrap(), pre_leases);
    handle.shutdown();
    let _ = join.join();
}

/// Kill the server at one record boundary inside the transition
/// transaction, restart, and return what a client then observes plus
/// the recovered server's transition status.
fn crash_transition_at(
    name: &str,
    point: CrashPoint,
    skip: u32,
    snapshot_every: u64,
) -> (String, Option<poc_ctrlplane::TransitionSummary>) {
    let dir = fresh_dir(name);
    let crash = CrashSwitch::new();
    let (handle, join) = start_durable(&dir, snapshot_every, crash.clone());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    run_setup(&mut client);

    crash.arm_after(point, skip);
    let err = client.begin_transition(None, Some(SHIFTED_SCALE)).unwrap_err();
    assert!(
        !matches!(err, ClientError::Server(_) | ClientError::Protocol(_)),
        "{point:?}+{skip}: crashed transition must fail at the transport, got {err:?}"
    );
    let _ = join.join();

    let (handle, join) = start_durable(&dir, snapshot_every, CrashSwitch::new());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let status = client.transition_status().unwrap();
    let state = observable_state(&mut client);
    handle.shutdown();
    let _ = join.join();
    (state, status)
}

#[test]
fn transition_crash_at_every_record_boundary_resumes_or_rolls_back() {
    // What the two consistent outcomes look like, billing included —
    // computed from uninterrupted durable runs of the same lifecycle.
    let committed = {
        let dir = fresh_dir("txn-ref-committed");
        let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
        let mut client = PocClient::connect(handle.local_addr).unwrap();
        run_setup(&mut client);
        client.begin_transition(None, Some(SHIFTED_SCALE)).unwrap();
        let state = observable_state(&mut client);
        handle.shutdown();
        let _ = join.join();
        state
    };
    let original = {
        let dir = fresh_dir("txn-ref-original");
        let (handle, join) = start_durable(&dir, 0, CrashSwitch::new());
        let mut client = PocClient::connect(handle.local_addr).unwrap();
        run_setup(&mut client);
        let state = observable_state(&mut client);
        handle.shutdown();
        let _ = join.join();
        state
    };
    assert_ne!(committed, original, "the scaled transition must be observable");

    // The transaction's four records give eight boundaries. A torn
    // begin record never opened the transaction (→ original); every
    // later boundary leaves enough journal for recovery to finish the
    // walk (→ committed, resumed by `finish_open_transition` except the
    // last boundary, where the whole family replays as-is).
    struct Case {
        point: CrashPoint,
        skip: u32,
        expect_committed: bool,
        expect_recovered_status: bool,
    }
    let cases = [
        Case {
            point: CrashPoint::MidAppend,
            skip: 0,
            expect_committed: false,
            expect_recovered_status: false,
        },
        Case {
            point: CrashPoint::AfterAppend,
            skip: 0,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::MidAppend,
            skip: 1,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::AfterAppend,
            skip: 1,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::MidAppend,
            skip: 2,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::AfterAppend,
            skip: 2,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::MidAppend,
            skip: 3,
            expect_committed: true,
            expect_recovered_status: true,
        },
        Case {
            point: CrashPoint::AfterAppend,
            skip: 3,
            expect_committed: true,
            expect_recovered_status: false,
        },
    ];
    for case in cases {
        let label = format!("{:?}+{}", case.point, case.skip);
        let (state, status) =
            crash_transition_at(&format!("txn-{label}"), case.point, case.skip, 0);
        let expect = if case.expect_committed { &committed } else { &original };
        assert_eq!(&state, expect, "{label}: wrong recovered state");
        match status {
            Some(s) => {
                assert!(case.expect_recovered_status, "{label}: unexpected status {s:?}");
                assert!(s.recovered, "{label}");
                assert_eq!(s.outcome, "committed", "{label}");
            }
            None => assert!(!case.expect_recovered_status, "{label}: expected a resumed status"),
        }
    }

    // The three snapshot-path crash points fire in the checkpoint cut
    // *after* the transition request: the committed transaction is
    // already durable, so recovery lands on the committed state from
    // wreckage alone (orphan tmp, torn snapshot, un-truncated journal).
    for point in [
        CrashPoint::MidSnapshotRename,
        CrashPoint::TornSnapshotWrite,
        CrashPoint::AfterSnapshotBeforeTruncate,
    ] {
        let (state, _status) =
            crash_transition_at(&format!("txn-snap-{}", point.label()), point, 0, 1);
        assert_eq!(&state, &committed, "{point:?}: wrong recovered state");
    }
}

// ---------------------------------------------------------------------------
// Property: recovery after a crash at an arbitrary record boundary is
// indistinguishable from uninterrupted execution.
// ---------------------------------------------------------------------------

/// One abstract mutating operation, mapped identically onto the crashed
/// and the uninterrupted run.
#[derive(Clone, Debug)]
enum Op {
    Attach(u8),
    Usage(u8, u32),
    Auction,
    Billing,
    Recall(u8, u8),
    /// A lease transition at 1× or the set-shifting 12× demand scale.
    /// Crashing on it cuts at the *begin* record (the request's first
    /// append), so recovery must finish the whole walk to match the
    /// uninterrupted run.
    Transition(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0u8..=255, 0u32..2000u32).prop_map(|(kind, x, y)| match kind {
        0 => Op::Attach(x % 6),
        1 => Op::Usage(x % 8, y),
        2 => Op::Auction,
        3 => Op::Billing,
        4 => Op::Recall(x % 3, x % 12),
        _ => Op::Transition(x % 2 == 0),
    })
}

/// Send one op; `Server` errors are legitimate outcomes (duplicate
/// attach, unauthorized usage, unroutable recall) that both runs hit
/// deterministically.
fn send_op(client: &mut PocClient, op: &Op) -> Result<(), ClientError> {
    let r = match op {
        Op::Attach(i) => client
            .attach(&format!("member-{i}"), AttachRole::Lmp { router: RouterId(*i as u32 % 4) })
            .map(|_| ()),
        Op::Usage(e, y) => {
            client.report_usage(EntityId(*e as u32 % 8), *y as f64 / 7.0).map(|_| ())
        }
        Op::Auction => client.run_auction().map(|_| ()),
        Op::Billing => client.run_billing().map(|_| ()),
        Op::Recall(bp, link) => client.recall_link(*bp as u32, *link as u32, 1).map(|_| ()),
        Op::Transition(shift) => {
            client.begin_transition(None, shift.then_some(SHIFTED_SCALE)).map(|_| ())
        }
    };
    match r {
        Ok(()) | Err(ClientError::Server(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Everything a client can observe about controller state, as one
/// comparable string. The trailing billing round makes pending usage
/// observable too.
fn observable_state(client: &mut PocClient) -> String {
    let outcome = client.outcome().unwrap();
    let leases = client.leases().unwrap();
    let balances: Vec<f64> = (0..10).map(|i| client.balance(EntityId(i)).unwrap()).collect();
    let billing = match client.run_billing() {
        Ok(b) => format!("{:?}", (b.period, b.total_outlay, b.unit_price, b.charges)),
        Err(ClientError::Server(m)) => format!("server-error: {m}"),
        Err(e) => panic!("billing probe failed at the transport: {e:?}"),
    };
    format!("outcome {outcome:?}\nleases {leases:?}\nbalances {balances:?}\nbilling {billing}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Run a random op sequence, crash (AfterAppend: the record is
    /// durable, the reply lost) at a random boundary, recover, and
    /// compare every observable against an uninterrupted in-memory run
    /// of the same prefix.
    #[test]
    fn recovery_at_any_record_boundary_matches_uninterrupted_execution(
        ops in prop::collection::vec(op_strategy(), 2..9),
        cut_seed in 0u16..10_000,
        snapshot_every in 0u64..3,
    ) {
        let cut = cut_seed as usize % ops.len();
        let dir = fresh_dir(&format!("prop-{cut_seed}-{}", ops.len()));
        let crash = CrashSwitch::new();

        // Crashed run: ops[..cut] acknowledged; the armed switch fires
        // on the next journal *append*. An op refused before any append
        // (a transition with no installed fabric — the one mutation that
        // checks preconditions pre-journal) returns a typed error and
        // leaves the switch armed, so walk forward until an op actually
        // journals; billing always appends and is the guaranteed
        // fallback.
        let (handle, join) = start_durable(&dir, snapshot_every, crash.clone());
        let mut client = PocClient::connect(handle.local_addr).unwrap();
        for op in &ops[..cut] {
            prop_assert!(send_op(&mut client, op).is_ok());
        }
        crash.arm(CrashPoint::AfterAppend);
        let mut crashed_at: Option<usize> = None;
        for (i, op) in ops[cut..].iter().enumerate() {
            if send_op(&mut client, op).is_err() {
                crashed_at = Some(cut + i);
                break;
            }
        }
        if crashed_at.is_none() {
            prop_assert!(client.run_billing().is_err(), "billing must hit the armed crash");
        }
        let _ = join.join();

        // Recover and read the observable state.
        let (handle, join) = start_durable(&dir, snapshot_every, CrashSwitch::new());
        let mut recovered = PocClient::connect(handle.local_addr).unwrap();
        let state_recovered = observable_state(&mut recovered);
        handle.shutdown();
        let _ = join.join();

        // Uninterrupted run of the same prefix (including the crashed
        // op: its record was durable).
        let (handle, join) = start_in_memory();
        let mut reference = PocClient::connect(handle.local_addr).unwrap();
        match crashed_at {
            Some(last) => {
                for op in &ops[..=last] {
                    prop_assert!(send_op(&mut reference, op).is_ok());
                }
            }
            None => {
                for op in &ops {
                    prop_assert!(send_op(&mut reference, op).is_ok());
                }
                let _ = reference.run_billing();
            }
        }
        let state_reference = observable_state(&mut reference);
        handle.shutdown();
        let _ = join.join();

        prop_assert_eq!(state_recovered, state_reference);
    }

    /// Group-commit recovery is equivalent to per-mutation-fsync
    /// recovery: the same op sequence crashed at the same record
    /// boundary recovers to the same observable state whether the
    /// journal was written through the sharded group-commit pipeline
    /// (shards = 8) or the maximally serialized one (shards = 1, every
    /// mutation its own commit). The journal is a *total order* either
    /// way — sharding may change who holds which lock, never what
    /// replay rebuilds.
    #[test]
    fn group_commit_recovery_matches_per_mutation_fsync_recovery(
        ops in prop::collection::vec(op_strategy(), 2..9),
        cut_seed in 0u16..10_000,
    ) {
        let cut = cut_seed as usize % ops.len();

        let run = |shards: usize| -> String {
            let dir = fresh_dir(&format!("shards{shards}-{cut_seed}-{}", ops.len()));
            let crash = CrashSwitch::new();
            let (handle, join) = start_durable_sharded(&dir, 0, crash.clone(), shards);
            let mut client = PocClient::connect(handle.local_addr).unwrap();
            for op in &ops[..cut] {
                prop_assert!(send_op(&mut client, op).is_ok());
            }
            // As above: skip over pre-journal refusals until an op
            // appends and hits the armed crash (billing as fallback).
            crash.arm(CrashPoint::AfterAppend);
            let mut crashed = false;
            for op in &ops[cut..] {
                if send_op(&mut client, op).is_err() {
                    crashed = true;
                    break;
                }
            }
            if !crashed {
                prop_assert!(client.run_billing().is_err(), "billing must hit the armed crash");
            }
            let _ = join.join();

            let (handle, join) =
                start_durable_sharded(&dir, 0, CrashSwitch::new(), shards);
            let mut recovered = PocClient::connect(handle.local_addr).unwrap();
            let state = observable_state(&mut recovered);
            handle.shutdown();
            let _ = join.join();
            state
        };

        prop_assert_eq!(run(8), run(1));
    }
}

//! Fault-injection tests: a live TCP server vs. misbehaving peers.
//!
//! Every fault the [`poc_ctrlplane::fault`] harness can inject is thrown
//! at a real server (ephemeral port, own thread), and each test proves
//! two things: the *faulty connection* is contained (evicted, rejected,
//! or closed) and the *server* keeps serving clean clients afterwards.
//!
//! Metrics assertions use deltas against the process-global registry
//! (tests in this binary run concurrently and share it), so they are
//! `>=` comparisons on before/after counter reads.

use poc_core::poc::{Poc, PocConfig};
use poc_ctrlplane::codec::write_frame;
use poc_ctrlplane::fault::{Fault, FaultProfile, FaultyTransport};
use poc_ctrlplane::server::ServerConfig;
use poc_ctrlplane::{ClientConfig, ClientError, PocClient, PocServer, Request, ServerHandle};
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start_server_with(config: ServerConfig) -> (ServerHandle, JoinHandle<()>) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    let poc = Poc::new(topo, PocConfig::default());
    let (server, handle) = PocServer::bind_with("127.0.0.1:0", poc, tm, config).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Short idle deadline so eviction tests finish fast; the read poll is
/// 100 ms, so eviction lands within ~idle_timeout + 200 ms.
fn quick_evict_config() -> ServerConfig {
    ServerConfig { idle_timeout: Duration::from_millis(300), ..ServerConfig::default() }
}

fn counter(name: &str) -> u64 {
    poc_obs::global().counter(name).get()
}

/// Poll until `cond` holds, panicking after `timeout`.
fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn stalled_mid_frame_client_is_evicted_within_idle_deadline() {
    let (handle, join) = start_server_with(quick_evict_config());
    let evicted_before = counter("ctrl.conn.idle_evicted");

    // Slowloris: a syntactically valid length prefix, half a payload,
    // then silence — the classic way to park a worker thread forever.
    let raw = TcpStream::connect(handle.local_addr).unwrap();
    let mut slowloris = FaultyTransport::scripted(raw, [Fault::TruncateMidFrame]);
    write_frame(&mut slowloris, &Request::Ping).unwrap();
    wait_until("server to register the connection", Duration::from_secs(2), || {
        handle.active_connections() >= 1
    });

    // The server evicts the stalled peer: thread count back to baseline
    // while the socket is still held open on our side.
    wait_until("idle eviction", Duration::from_secs(3), || handle.active_connections() == 0);
    assert!(
        counter("ctrl.conn.idle_evicted") > evicted_before,
        "eviction must be visible in ctrl.conn.idle_evicted"
    );

    // The server still serves clean clients.
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();
    drop(slowloris);
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn client_retry_recovers_metrics_scrape_across_connection_drop() {
    let (handle, join) = start_server_with(ServerConfig::default());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();

    let retries_before = counter("ctrl.client.retries");
    // Sever the connection out from under the client: the next request
    // fails at the transport layer mid-session.
    client.inject_disconnect();
    let snap = client.metrics().expect("retry loop must recover the scrape");
    assert!(snap.counter("ctrl.conn.total").unwrap_or(0) >= 1);
    assert!(
        counter("ctrl.client.retries") > retries_before,
        "recovery must be visible in ctrl.client.retries"
    );

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn mutating_requests_are_never_replayed() {
    let (handle, join) = start_server_with(ServerConfig::default());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();

    client.inject_disconnect();
    // RunAuction is not idempotent: the failure surfaces instead of a
    // blind replay (the round may or may not have executed).
    let err = client.run_auction().unwrap_err();
    assert!(
        matches!(err, ClientError::Codec(_) | ClientError::TimedOut),
        "expected a transport error, got {err}"
    );
    // The same client object recovers on its next idempotent request.
    client.ping().expect("retry loop reconnects for idempotent requests");

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn begin_transition_is_never_auto_retried() {
    let (handle, join) = start_server_with(ServerConfig::default());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();

    client.inject_disconnect();
    // BeginTransition journals lease mutations: a lost reply leaves the
    // migration ambiguous (committed? rolled back?), so the client must
    // surface the transport failure instead of blindly replaying it.
    let err = client.begin_transition(None, None).unwrap_err();
    assert!(
        matches!(err, ClientError::Codec(_) | ClientError::TimedOut),
        "expected a transport error, got {err}"
    );

    // The operator's next move rides the retry loop: TransitionStatus is
    // idempotent, so the same client object reconnects and answers.
    let status = client.transition_status().expect("idempotent status must retry");
    assert!(status.is_none(), "no transition ever finished on this server");

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn garbage_json_closes_that_connection_only() {
    let (handle, join) = start_server_with(ServerConfig::default());

    // A clean client attached *before* the fault...
    let mut bystander = PocClient::connect(handle.local_addr).unwrap();
    bystander.ping().unwrap();

    let raw = TcpStream::connect(handle.local_addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut vandal = FaultyTransport::scripted(raw, [Fault::GarbagePayload]);
    write_frame(&mut vandal, &Request::Ping).unwrap();
    // The server drops the vandal: our read sees EOF, no response frame.
    let mut buf = [0u8; 16];
    let n = std::io::Read::read(&mut vandal, &mut buf).unwrap();
    assert_eq!(n, 0, "server must close the corrupted connection");

    // ...is unaffected, as is a fresh one.
    bystander.ping().unwrap();
    let mut fresh = PocClient::connect(handle.local_addr).unwrap();
    fresh.ping().unwrap();

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn oversized_length_prefix_closes_only_that_connection() {
    let (handle, join) = start_server_with(ServerConfig::default());
    let mut bystander = PocClient::connect(handle.local_addr).unwrap();
    bystander.ping().unwrap();

    let raw = TcpStream::connect(handle.local_addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut vandal = FaultyTransport::scripted(raw, [Fault::OversizedPrefix]);
    write_frame(&mut vandal, &Request::Ping).unwrap();
    let mut buf = [0u8; 16];
    let n = std::io::Read::read(&mut vandal, &mut buf).unwrap();
    assert_eq!(n, 0, "server must close on an oversized prefix");

    bystander.ping().unwrap();
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn truncated_frame_then_reconnect_works() {
    let (handle, join) = start_server_with(quick_evict_config());

    // Truncate a frame, then hang up: the server sees EOF mid-frame and
    // closes its side without disturbing anything else.
    let raw = TcpStream::connect(handle.local_addr).unwrap();
    let mut t = FaultyTransport::scripted(raw, [Fault::TruncateMidFrame]);
    write_frame(&mut t, &Request::Ping).unwrap();
    drop(t);

    // Reconnecting from scratch works immediately.
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();
    wait_until("torn connection to drain", Duration::from_secs(3), || {
        handle.active_connections() == 1
    });

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn connection_cap_rejects_excess_with_typed_error() {
    let (handle, join) =
        start_server_with(ServerConfig { max_connections: 2, ..ServerConfig::default() });
    let rejected_before = counter("ctrl.conn.rejected");

    let mut a = PocClient::connect(handle.local_addr).unwrap();
    let mut b = PocClient::connect(handle.local_addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    assert_eq!(handle.active_connections(), 2);

    // The third connection is turned away with one typed error frame.
    let mut c =
        PocClient::connect_with(handle.local_addr, ClientConfig::default().no_retry()).unwrap();
    let err = c.ping().unwrap_err();
    let ClientError::Server(message) = err else { panic!("expected typed rejection, got {err}") };
    assert!(message.contains("capacity"), "{message}");
    assert!(counter("ctrl.conn.rejected") > rejected_before);

    // Capacity frees up when a client leaves; the server then accepts
    // again (the parked reader notices the EOF within its poll cycle).
    drop(a);
    wait_until("slot to free", Duration::from_secs(2), || handle.active_connections() < 2);
    let mut d = PocClient::connect(handle.local_addr).unwrap();
    d.ping().unwrap();

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn server_survives_a_seeded_random_fault_storm() {
    let (handle, join) = start_server_with(quick_evict_config());

    // Forty connections, each writing a few frames through a seeded
    // random fault profile. Whatever mix of truncations, garbage,
    // oversized prefixes, drops, and delays a seed produces, none of it
    // may take the controller down.
    for seed in 0..40u64 {
        let raw = TcpStream::connect(handle.local_addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut storm = FaultyTransport::random(raw, seed, FaultProfile::default());
        for _ in 0..3 {
            if write_frame(&mut storm, &Request::Ping).is_err() {
                break; // injected drop: connection is gone, move on
            }
            // Drain any response so passthrough frames don't back up.
            let mut buf = [0u8; 256];
            let _ = std::io::Read::read(&mut storm, &mut buf);
        }
    }

    // The controller survived: a clean client gets served, and every
    // faulty connection drains (closed on error/EOF or idle-evicted).
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();
    let snap = client.metrics().unwrap();
    assert!(snap.counter("ctrl.conn.total").unwrap_or(0) >= 40);
    wait_until("storm connections to drain", Duration::from_secs(5), || {
        handle.active_connections() <= 1
    });
    client.ping().unwrap();

    handle.shutdown();
    let _ = join.join();
}

//! Group-commit integration tests against a live durable server: the
//! ack ⇔ durable contract under injected fsync failures, fsync
//! coalescing under concurrent load, and admission backpressure
//! (`Response::Busy`) when the in-flight bound is exceeded.
//!
//! The failure contract under test: when the commit-leader's fsync
//! fails, *every* request in that batch gets a typed error and the
//! journal is rolled back — a coalesced mutation is never acknowledged
//! without being on disk, and never left on disk without being
//! acknowledged.

use poc_core::entity::EntityId;
use poc_core::poc::{Poc, PocConfig};
use poc_ctrlplane::server::ServerConfig;
use poc_ctrlplane::{
    AttachRole, ClientConfig, ClientError, DurabilityConfig, FsyncFault, FsyncPolicy, PocClient,
    PocServer, RetryPolicy, ServerHandle,
};
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

fn build_world() -> (poc_topology::PocTopology, TrafficMatrix) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(1), RouterId(2), 5.0);
    (topo, tm)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poc-gc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_with(state_dir: &Path, config: ServerConfig) -> (ServerHandle, JoinHandle<()>) {
    let (topo, tm) = build_world();
    let poc = Poc::new(topo, PocConfig::default());
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            state_dir: state_dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 0,
        }),
        ..config
    };
    let (server, handle) = PocServer::bind_with("127.0.0.1:0", poc, tm, config).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Satellite regression: an fsync failure mid-group-commit must fail
/// the batched mutation with a *typed* error (never an ack), roll the
/// journal back so the record is gone, and leave the server healthy
/// for the next request.
#[test]
fn fsync_failure_fails_the_batch_and_never_acks_the_mutation() {
    let dir = fresh_dir("fsync-fault");
    let fault = FsyncFault::new();
    let config = ServerConfig { fsync_fault: fault.clone(), ..ServerConfig::default() };
    let (handle, join) = start_with(&dir, config);
    let mut client = PocClient::connect(handle.local_addr).unwrap();

    let a = client.attach("lmp-a", AttachRole::Lmp { router: RouterId(0) }).unwrap();

    // Arm exactly one fsync failure; the next durable mutation's commit
    // leader hits it.
    fault.arm(1);
    let err = client.report_usage(a, 5.0).unwrap_err();
    match err {
        ClientError::Server(msg) => {
            assert!(msg.contains("durability failure"), "typed refusal, got: {msg}");
            assert!(msg.contains("batch rolled back"), "names the rollback, got: {msg}");
        }
        other => panic!("expected a typed server refusal, got {other:?}"),
    }

    // The connection stays usable and the fault was consumed: the next
    // mutation commits normally.
    client.report_usage(a, 7.0).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.counter("ctrl.journal.batch_failures").unwrap_or(0) >= 1);
    handle.shutdown();
    let _ = join.join();

    // Restart from the same directory: only the *acknowledged* events
    // are in the journal — the attach and the second usage report. The
    // rolled-back report must not reappear.
    let (handle, join) = start_with(&dir, ServerConfig::default());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let info = client.recovery_info().unwrap().unwrap();
    assert_eq!(info.replayed_records, 2, "attach + acked usage; the aborted report is gone");
    assert!(!info.torn_tail, "rollback truncates cleanly, not a torn tail");
    handle.shutdown();
    let _ = join.join();
}

/// The ack ⇔ durable invariant under a concurrent fault storm: spin
/// client threads through usage reports while fsync failures fire at
/// random points; afterwards the journal must hold exactly the
/// acknowledged mutations — every ack durable, every typed failure
/// rolled back.
#[test]
fn acked_mutations_exactly_match_the_recovered_journal_under_fault_storm() {
    const CLIENTS: usize = 4;
    const REPORTS: usize = 25;

    let dir = fresh_dir("fault-storm");
    let fault = FsyncFault::new();
    let config = ServerConfig { fsync_fault: fault.clone(), ..ServerConfig::default() };
    let (handle, join) = start_with(&dir, config);

    // Each thread owns one attached LMP (distinct shard keys).
    let mut setup = PocClient::connect(handle.local_addr).unwrap();
    let entities: Vec<EntityId> = (0..CLIENTS)
        .map(|i| {
            setup
                .attach(&format!("lmp-{i}"), AttachRole::Lmp { router: RouterId(i as u32 % 4) })
                .unwrap()
        })
        .collect();

    let addr = handle.local_addr;
    let acked: usize = std::thread::scope(|s| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let entity = entities[i];
                let fault = fault.clone();
                s.spawn(move || {
                    let mut client =
                        PocClient::connect_with(addr, ClientConfig::default().no_retry()).unwrap();
                    let mut acks = 0usize;
                    for n in 0..REPORTS {
                        // Periodically re-arm a failure so faults land at
                        // unpredictable batch boundaries across threads.
                        if i == 0 && n % 7 == 3 {
                            fault.arm(1);
                        }
                        match client.report_usage(entity, 0.5) {
                            Ok(()) => acks += 1,
                            Err(ClientError::Server(msg)) => {
                                assert!(
                                    msg.contains("durability failure"),
                                    "only the typed durability refusal is legitimate: {msg}"
                                );
                            }
                            Err(other) => panic!("transport-level failure: {other:?}"),
                        }
                    }
                    acks
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    handle.shutdown();
    let _ = join.join();

    // Recovery replays exactly attaches + acked reports: nothing a
    // client saw fail is on disk, nothing a client saw succeed is lost.
    let (handle, join) = start_with(&dir, ServerConfig::default());
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let info = client.recovery_info().unwrap().unwrap();
    assert_eq!(
        info.replayed_records,
        (CLIENTS + acked) as u64,
        "journal holds exactly the acknowledged mutations ({CLIENTS} attaches + {acked} acks)"
    );
    handle.shutdown();
    let _ = join.join();
}

/// Group commit actually batches: under concurrent durable load, the
/// fsync count stays strictly below the append count (K mutations
/// coalesce behind one commit leader). The metrics registry is
/// process-global, so the assertion is on deltas across the load.
#[test]
fn concurrent_durable_load_coalesces_fsyncs() {
    const CLIENTS: usize = 8;
    const REPORTS: usize = 40;

    let dir = fresh_dir("coalesce");
    let (handle, join) = start_with(&dir, ServerConfig::default());

    let mut setup = PocClient::connect(handle.local_addr).unwrap();
    let entities: Vec<EntityId> = (0..CLIENTS)
        .map(|i| {
            setup
                .attach(&format!("lmp-{i}"), AttachRole::Lmp { router: RouterId(i as u32 % 4) })
                .unwrap()
        })
        .collect();

    let before = setup.metrics().unwrap();
    let addr = handle.local_addr;
    std::thread::scope(|s| {
        for &entity in &entities {
            s.spawn(move || {
                let mut client = PocClient::connect(addr).unwrap();
                for _ in 0..REPORTS {
                    client.report_usage(entity, 0.25).unwrap();
                }
            });
        }
    });
    let after = setup.metrics().unwrap();

    let delta = |name: &str| {
        after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
    };
    let appends = delta("ctrl.journal.appends");
    let fsyncs = delta("ctrl.journal.fsyncs");
    let commits = delta("ctrl.journal.group_commits");
    assert!(appends >= (CLIENTS * REPORTS) as u64, "every report journaled ({appends})");
    assert!(commits >= 1, "the group-commit path ran");
    assert!(
        fsyncs < appends,
        "concurrent appends must coalesce: {fsyncs} fsyncs for {appends} appends"
    );

    handle.shutdown();
    let _ = join.join();
}

/// Admission backpressure: with the in-flight bound squeezed to one,
/// concurrent non-retrying clients must see typed `Busy` rejections —
/// and clients with a retry budget ride through the same contention
/// without ever surfacing one.
#[test]
fn over_budget_requests_get_busy_and_retries_ride_through() {
    const CLIENTS: usize = 4;
    const REPORTS: usize = 50;

    let dir = fresh_dir("admission");
    let config = ServerConfig { max_queue: 1, ..ServerConfig::default() };
    let (handle, join) = start_with(&dir, config);

    let mut setup = PocClient::connect(handle.local_addr).unwrap();
    let entities: Vec<EntityId> = (0..CLIENTS)
        .map(|i| {
            setup
                .attach(&format!("lmp-{i}"), AttachRole::Lmp { router: RouterId(i as u32 % 4) })
                .unwrap()
        })
        .collect();

    let before = setup.metrics().unwrap();
    let addr = handle.local_addr;
    let busy: usize = std::thread::scope(|s| {
        let workers: Vec<_> = entities
            .iter()
            .map(|&entity| {
                s.spawn(move || {
                    let mut client =
                        PocClient::connect_with(addr, ClientConfig::default().no_retry()).unwrap();
                    let mut busy = 0usize;
                    for _ in 0..REPORTS {
                        match client.report_usage(entity, 0.1) {
                            Ok(()) => {}
                            Err(ClientError::Busy { retry_after_ms }) => {
                                assert!(retry_after_ms > 0, "the hint is actionable");
                                busy += 1;
                            }
                            Err(other) => panic!("unexpected failure: {other:?}"),
                        }
                    }
                    busy
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert!(busy >= 1, "contention on max_queue=1 must shed load");
    let after = setup.metrics().unwrap();
    let rejected = after.counter("ctrl.admission.rejected").unwrap_or(0)
        - before.counter("ctrl.admission.rejected").unwrap_or(0);
    assert!(rejected >= busy as u64, "every Busy came from the admission gate");

    // Same contention, but with a retry budget: the client absorbs the
    // Busy answers (safe even for mutations — nothing was journaled)
    // and every call lands.
    std::thread::scope(|s| {
        for &entity in &entities {
            s.spawn(move || {
                let retry = RetryPolicy { max_retries: 20, ..RetryPolicy::default() };
                let config = ClientConfig { retry, ..ClientConfig::default() };
                let mut client = PocClient::connect_with(addr, config).unwrap();
                for _ in 0..20 {
                    client.report_usage(entity, 0.1).unwrap();
                }
            });
        }
    });

    handle.shutdown();
    let _ = join.join();
}

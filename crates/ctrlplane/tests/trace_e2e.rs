//! End-to-end causal tracing over a live server: one trace id sent in a
//! client's `Request::Traced` envelope must come back — via the
//! `Request::Trace` scrape — as a single span tree covering the request
//! handler, the journal append/fsync, the auction round, and every
//! Clarke pivot, with correct parentage across the parallel pivot
//! thread boundary. The same scrape must export to valid Chrome
//! trace-event JSON.
//!
//! The server runs in-process, so the test enables the process-global
//! flight recorder itself (the `poc serve` binary does the same at
//! startup) and leaves it on — disabling it could race another test's
//! open span in this binary.

use poc_core::poc::{Poc, PocConfig};
use poc_ctrlplane::server::ServerConfig;
use poc_ctrlplane::{DurabilityConfig, FsyncPolicy, PocClient, PocServer};
use poc_obs::TraceWire;
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use std::thread::JoinHandle;

fn start_durable_server(tag: &str) -> (poc_ctrlplane::ServerHandle, JoinHandle<()>) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(1), RouterId(2), 5.0);
    let poc = Poc::new(topo, PocConfig::default());
    let state_dir = std::env::temp_dir().join(format!("poc-trace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            state_dir,
            fsync: FsyncPolicy::Always,
            snapshot_every: 0,
        }),
        ..ServerConfig::default()
    };
    let (server, handle) = PocServer::bind_with("127.0.0.1:0", poc, tm, config).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn span_ids_named<'t>(trace: &'t TraceWire, name: &str) -> Vec<&'t poc_obs::TraceEventWire> {
    trace.events.iter().filter(|e| e.name == name).collect()
}

#[test]
fn traced_auction_round_reconstructs_end_to_end() {
    poc_obs::trace::recorder().set_enabled(true);
    let (handle, join) = start_durable_server("e2e");
    let mut client = PocClient::connect(handle.local_addr).unwrap();

    let trace_id = poc_obs::trace::new_trace_id();
    client.set_trace(Some(trace_id));
    let outcome = client.run_auction().unwrap();
    assert!(!outcome.settlements.is_empty(), "round settled at least one BP");

    // Scrape by id over the wire — same client, same envelope.
    let traces = client.traces(Some(trace_id), None).unwrap();
    assert_eq!(traces.len(), 1, "exactly one trace under the sent id");
    let trace = &traces[0];
    assert_eq!(trace.trace_id, trace_id);
    assert!(trace.events.iter().all(|e| e.trace_id == trace_id));

    // Root: the request-handler span, parented to the trace root.
    let roots = span_ids_named(trace, "ctrl.request.run_auction");
    assert_eq!(roots.len(), 1, "one handler span: {trace:?}");
    let root = roots[0];
    assert_eq!(root.parent_id, 0);

    // The journal persisted the round under the handler span; with
    // `FsyncPolicy::Always` the append's durability wait runs the
    // group-commit protocol, so the fsync span parents to the
    // commit-leader's `ctrl.journal.group_commit` span (this request is
    // alone, so it *is* the leader), which in turn sits under root next
    // to the buffered append.
    let appends = span_ids_named(trace, "ctrl.journal.append");
    assert!(!appends.is_empty(), "missing journal append: {trace:?}");
    assert!(appends.iter().all(|s| s.parent_id == root.span_id), "appends under root");
    let commits = span_ids_named(trace, "ctrl.journal.group_commit");
    assert!(!commits.is_empty(), "missing group commit: {trace:?}");
    assert!(commits.iter().all(|s| s.parent_id == root.span_id), "group commits under root");
    let commit_ids: Vec<u64> = commits.iter().map(|s| s.span_id).collect();
    let fsyncs = span_ids_named(trace, "ctrl.journal.fsync");
    assert!(!fsyncs.is_empty(), "missing journal fsync: {trace:?}");
    assert!(
        fsyncs.iter().all(|s| commit_ids.contains(&s.parent_id)),
        "fsyncs under their group commits: {trace:?}"
    );

    // The auction round span sits under the handler; every Clarke pivot
    // parents to the round across the parallel thread scope — one span
    // per settlement at least (withdrawn-BP re-selections).
    let rounds = span_ids_named(trace, "auction.round.parallel");
    assert_eq!(rounds.len(), 1, "one round span: {trace:?}");
    let round = rounds[0];
    assert_eq!(round.parent_id, root.span_id);
    // BPs with no links in SL settle trivially without a pivot run, so
    // the expected span count is the settlements that actually paid for
    // a re-selection (payment > 0 implies a pivot ran).
    let real_pivots = outcome.settlements.iter().filter(|(_, payment, _)| *payment > 0.0).count();
    let pivots = span_ids_named(trace, "auction.pivot");
    assert!(real_pivots >= 1, "fixture must exercise at least one real pivot");
    assert!(
        pivots.len() >= real_pivots,
        "≥1 pivot span per Clarke pivot ({real_pivots} real pivots, {} pivot spans)",
        pivots.len()
    );
    assert!(pivots.iter().all(|p| p.parent_id == round.span_id), "pivots under the round");

    // The flow layer under the pivots: at least one oracle evaluation,
    // parented inside this trace.
    assert!(
        trace.events.iter().any(|e| e.name.starts_with("flow.")),
        "flow-layer spans recorded: {trace:?}"
    );

    // The Chrome export of this scrape is valid trace-event JSON and
    // keeps the shared trace id on every event.
    let json = poc_obs::chrome::chrome_trace_json(&traces);
    let back: poc_obs::chrome::ChromeTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.traceEvents.len(), trace.events.len());
    assert!(back.traceEvents.iter().all(|e| e.ph == "X" && e.args.trace_id == trace_id));
    assert!(back.traceEvents.iter().any(|e| e.name == "auction.round.parallel"));

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn untraced_requests_get_a_server_assigned_trace() {
    poc_obs::trace::recorder().set_enabled(true);
    let (handle, join) = start_durable_server("auto");
    let mut client = PocClient::connect(handle.local_addr).unwrap();

    // No envelope: an old client. The server assigns an id of its own,
    // so the request still shows up in the recorder.
    client.ping().unwrap();
    let traces = client.traces(None, None).unwrap();
    let ping = traces
        .iter()
        .flat_map(|t| t.events.iter())
        .find(|e| e.name == "ctrl.request.ping")
        .expect("server-assigned trace covers the untraced ping");
    assert_ne!(ping.trace_id, 0);
    assert_eq!(ping.parent_id, 0, "the handler span roots its trace");

    // `last_n` trims the scrape from the oldest side.
    let all = client.traces(None, None).unwrap().len();
    let last = client.traces(None, Some(1)).unwrap();
    assert_eq!(last.len(), 1.min(all));

    handle.shutdown();
    let _ = join.join();
}

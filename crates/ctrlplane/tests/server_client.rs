//! End-to-end control-plane tests: a real TCP server on an ephemeral port,
//! typed clients attaching, auctioning, billing, and querying.

use poc_core::entity::EntityId;
use poc_core::poc::{Poc, PocConfig};
use poc_core::tos::{PolicyAction, PolicyBasis, PolicyMatch, TrafficPolicy};
use poc_ctrlplane::{AttachRole, PocClient, PocServer};
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use std::thread::JoinHandle;

fn start_server() -> (poc_ctrlplane::ServerHandle, JoinHandle<()>) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(1), RouterId(2), 5.0);
    let poc = Poc::new(topo, PocConfig::default());
    let (server, handle) = PocServer::bind("127.0.0.1:0", poc, tm).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

#[test]
fn ping_pong() {
    let (handle, join) = start_server();
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    client.ping().unwrap();
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn full_lifecycle_attach_auction_usage_billing() {
    let (handle, join) = start_server();
    let mut operator = PocClient::connect(handle.local_addr).unwrap();
    let mut lmp_client = PocClient::connect(handle.local_addr).unwrap();

    // Attach two LMPs from a second connection.
    let lmp_a = lmp_client.attach("lmp-a", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    let lmp_b = lmp_client.attach("lmp-b", AttachRole::Lmp { router: RouterId(1) }).unwrap();
    assert_ne!(lmp_a, lmp_b);

    // No outcome before the auction.
    assert!(operator.outcome().unwrap().is_none());

    // Run the auction.
    let outcome = operator.run_auction().unwrap();
    assert!(outcome.n_selected_links > 0);
    assert!(outcome.total_cost > 0.0);
    assert_eq!(operator.outcome().unwrap().unwrap(), outcome);

    // Path between the members exists now.
    let path = lmp_client.path(lmp_a, lmp_b).unwrap();
    assert!(path.is_some());
    assert!(!path.unwrap().is_empty());

    // Report usage and bill.
    lmp_client.report_usage(lmp_a, 12.0).unwrap();
    lmp_client.report_usage(lmp_b, 8.0).unwrap();
    let bill = operator.run_billing().unwrap();
    assert!(bill.total_outlay > 0.0);
    assert!(bill.poc_net.abs() < 1e-6, "POC must break even: {bill:?}");
    assert_eq!(bill.charges.len(), 2);

    // Balances reflect the charges.
    let bal_a = lmp_client.balance(lmp_a).unwrap();
    assert!(bal_a < 0.0, "LMP paid the POC: {bal_a}");

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn policy_review_over_the_wire() {
    let (handle, join) = start_server();
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    let lmp = client.attach("lmp", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    // Discriminatory block → violation.
    let verdict = client
        .review_policy(TrafficPolicy {
            lmp,
            matches: PolicyMatch { source: Some(EntityId(999)), ..PolicyMatch::any() },
            action: PolicyAction::Block,
            basis: PolicyBasis::Commercial,
        })
        .unwrap();
    assert!(verdict.is_violation());
    // Posted-price QoS → allowed.
    let verdict = client
        .review_policy(TrafficPolicy {
            lmp,
            matches: PolicyMatch::any(),
            action: PolicyAction::Prioritize(3),
            basis: PolicyBasis::PostedPrice { price: 5.0, openly_offered: true },
        })
        .unwrap();
    assert!(!verdict.is_violation());
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn errors_are_reported_not_fatal() {
    let (handle, join) = start_server();
    let mut client = PocClient::connect(handle.local_addr).unwrap();
    // Billing before any auction → server error, connection stays usable.
    let err = client.run_billing().unwrap_err();
    assert!(err.to_string().contains("no fabric"), "{err}");
    client.ping().unwrap();
    // Duplicate attach name.
    client.attach("dup", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    let err = client.attach("dup", AttachRole::Lmp { router: RouterId(1) }).unwrap_err();
    assert!(err.to_string().contains("already registered"), "{err}");
    // Usage from an unknown entity.
    let err = client.report_usage(EntityId(999), 1.0).unwrap_err();
    assert!(err.to_string().contains("not authorized"), "{err}");
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn concurrent_clients_serialize_cleanly() {
    let (handle, join) = start_server();
    let addr = handle.local_addr;
    let mut workers = Vec::new();
    for i in 0..8 {
        workers.push(std::thread::spawn(move || {
            let mut c = PocClient::connect(addr).unwrap();
            c.ping().unwrap();
            c.attach(&format!("lmp-{i}"), AttachRole::Lmp { router: RouterId(0) }).unwrap()
        }));
    }
    let mut ids = Vec::new();
    for w in workers {
        ids.push(w.join().unwrap());
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 8, "every client got a distinct entity id");
    handle.shutdown();
    let _ = join.join();
}

#[test]
fn metrics_scrape_round_trip() {
    let (handle, join) = start_server();
    let mut operator = PocClient::connect(handle.local_addr).unwrap();

    // Drive an auction round through the wire so the auction and flow
    // layers record into the registry the scrape will return.
    operator.run_auction().unwrap();
    let snap = operator.metrics().unwrap();

    // The paper pipeline ran: the (default parallel) round histogram has
    // at least this round in it, and its pivots probed the shared
    // feasibility cache, whose stats are bridged as named counters.
    let round = snap.histogram("auction.round.parallel").expect("round histogram");
    assert!(round.count >= 1, "round recorded: {round:?}");
    assert!(round.sum > 0, "round took nonzero wall time");
    assert!(round.p50 <= round.p90 && round.p90 <= round.p99);
    assert!(snap.histogram("auction.pivot").expect("pivot histogram").count >= 1);
    assert!(snap.counter("flow.cache.miss").unwrap_or(0) > 0, "pivots probed the cache");
    // Hits depend on pivot overlap; on this small topology the bridge
    // must at least be registered (nonzero-hit coverage lives in
    // poc-flow's cache_stats_bridge test).
    assert!(snap.counter("flow.cache.hit").is_some(), "hit counter bridged");
    assert!(snap.counter("flow.oracle.check").unwrap_or(0) > 0);

    // The control plane measured itself serving us.
    assert!(snap.histogram("ctrl.request.run_auction").expect("request histogram").count >= 1);
    assert!(snap.counter("ctrl.frames.read").unwrap_or(0) >= 2, "auction + metrics frames");
    assert!(snap.counter("ctrl.conn.total").unwrap_or(0) >= 1);

    // A second scrape observes the first one's latency sample.
    let again = operator.metrics().unwrap();
    assert!(again.histogram("ctrl.request.metrics").expect("metrics histogram").count >= 1);

    handle.shutdown();
    let _ = join.join();
}

#[test]
fn shutdown_drains_parked_connections_to_zero() {
    let (handle, join) = start_server();

    // Three clients attach and then park (no further requests): their
    // connection threads sit in the polling read.
    let mut parked = Vec::new();
    for _ in 0..3 {
        let mut c = PocClient::connect(handle.local_addr).unwrap();
        // A served ping guarantees the accept loop registered the
        // connection (connect alone only fills the listen backlog).
        c.ping().unwrap();
        parked.push(c);
    }
    assert_eq!(handle.active_connections(), 3);

    handle.shutdown();
    join.join().expect("server thread");
    // run() returns only after every connection thread exited, so the
    // per-server count must have drained to zero.
    assert_eq!(handle.active_connections(), 0, "parked connections drained");
    drop(parked);
}

#[test]
fn lease_recall_over_the_wire() {
    let (handle, join) = start_server();
    let mut operator = PocClient::connect(handle.local_addr).unwrap();
    operator.run_auction().unwrap();

    // Lease book is populated and all leases are active.
    let leases = operator.leases().unwrap();
    assert!(!leases.is_empty());
    assert!(leases.iter().all(|l| l.state == "active"));

    // A BP recalls its first leased link: lease found, re-auction flagged.
    let lease = leases[0].clone();
    let (found, reauction) = operator.recall_link(lease.bp, lease.link, 1).unwrap();
    assert!(found);
    assert!(reauction);
    let leases = operator.leases().unwrap();
    let recalled = leases.iter().find(|l| l.link == lease.link).unwrap();
    assert!(recalled.state.starts_with("recalled@"), "{recalled:?}");

    // Recalling an unknown link is a clean no-op.
    let (found, _) = operator.recall_link(99, 9999, 1).unwrap();
    assert!(!found);

    // A fresh auction round clears the flag.
    operator.run_auction().unwrap();
    let (_, reauction) = operator.recall_link(99, 9999, 1).unwrap();
    assert!(!reauction, "fresh round must clear the re-auction flag");

    handle.shutdown();
    let _ = join.join();
}

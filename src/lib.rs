//! Facade crate re-exporting the Public Option for the Core workspace.
pub use poc_auction as auction;
pub use poc_core as core;
pub use poc_ctrlplane as ctrlplane;
pub use poc_econ as econ;
pub use poc_flow as flow;
pub use poc_netsim as netsim;
pub use poc_obs as obs;
pub use poc_topology as topology;
pub use poc_traffic as traffic;
pub use poc_transition as transition;

//! `poc` — command-line front end for the Public Option for the Core.
//!
//! ```console
//! poc topo-stats [--paper]            instance statistics (E-T1)
//! poc auction [--paper] [--constraint 1|2|3]
//!                                     one VCG round + PoB table (E-F2)
//! poc welfare                         §4 regime comparison (E-W1)
//! poc drill [--failures N]            failure drill (E-R1)
//! poc serve [--addr HOST:PORT] [--max-conns N]
//!           [--idle-timeout-ms N] [--write-timeout-ms N]
//!           [--state-dir PATH] [--fsync always|interval|never]
//!           [--snapshot-every N]
//!                                     run the control-plane server
//! poc metrics [--addr HOST:PORT] [--json]
//!             [--timeout-ms N] [--retries N] [--backoff-ms N]
//!                                     scrape a running server's metrics
//! ```
//!
//! Argument parsing is deliberately dependency-free (std only).

use public_option_core::auction::Selector;
use public_option_core::auction::{run_auction, GreedySelector, Market};
use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::econ::Economy;
use public_option_core::flow::{Constraint, FeasibilityOracle};
use public_option_core::netsim::drill::{run_drill, DrillSpec};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{
    CostModel, PocTopology, TopologyStats, ZooConfig, ZooGenerator,
};
use public_option_core::traffic::{TrafficMatrix, TrafficScenario};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "topo-stats" => cmd_topo_stats(rest),
        "auction" => cmd_auction(rest),
        "welfare" => cmd_welfare(),
        "drill" => cmd_drill(rest),
        "transition" => cmd_transition(rest),
        "dataplane" => cmd_dataplane(rest),
        "serve" => cmd_serve(rest),
        "metrics" => cmd_metrics(rest),
        "round" => cmd_round(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: poc <command> [options]

commands:
  topo-stats [--paper]                 synthetic instance statistics (E-T1)
  auction [--paper] [--constraint N]   run one VCG round, print PoB (E-F2)
  welfare                              §4 regime comparison (E-W1)
  drill [--failures N]                 failure drill on the leased fabric (E-R1)
  transition [--headroom FACTOR]       migrate the fabric to the set the auction
             [--constraint N]            selects under demand scaled by FACTOR
             [--max-extra N]             (default 1.5), every intermediate set
             [--cut N] [--recall N]      verified feasible. --max-extra caps
             [--addr HOST:PORT]          headroom links held mid-walk; --cut/
             [--status]                  --recall inject faults mid-transition
                                         (local drill only). --addr runs the
                                         migration on a live server instead;
                                         --status asks it how the last one ended.
  dataplane [--horizon-ms N]           auction → leases → packets → money: run one
            [--cheat FACTOR]             VCG round, replay the traffic matrix as
            [--addr HOST:PORT]           packets on the leased fabric, settle the
                                         bill from delivered bytes. --cheat throttles
                                         the suspect class at ingress and the
                                         auditor's packet detector must flag it.
                                         --addr settles against a running server
                                         (start it with the same preset).
  serve [--addr HOST:PORT]             run the control-plane server
        [--max-conns N]                  connection cap (default 256)
        [--idle-timeout-ms N]            evict silent peers after N ms (default 30000)
        [--write-timeout-ms N]           per-response write deadline (default 10000)
        [--shards N]                     usage-ledger shards; a shard's mutation
                                         holds its lock across the group commit,
                                         so size this to the expected number of
                                         concurrent writers (default 8)
        [--max-queue N]                  admitted requests in flight before the
                                         server answers Busy (default 1024)
        [--accept-shards N]              threads blocked in accept() (default 2)
        [--state-dir PATH]               journal + snapshots here; recover on start
                                         (default: in-memory only, state dies with
                                         the process)
        [--fsync always|interval|never]  journal durability policy (default always)
        [--snapshot-every N]             checkpoint every N events, 0 = never
                                         (default 64)
  metrics [--addr HOST:PORT] [--json]  scrape a running server's metrics
          [--timeout-ms N]               read deadline for the scrape (default 30000)
          [--retries N]                  reconnect-and-retry budget (default 3)
          [--backoff-ms N]               base retry backoff (default 50)
  round [--addr HOST:PORT]             ask a running server for one auction round,
        [--trace-id N]                   tagged with a trace id (default: fresh id)
        [--timeout-ms N]                 read deadline (default 600000 — rounds are slow)
  trace [--addr HOST:PORT]             scrape recorded trace trees from a server
        [--id N] [--last N]              one trace by id / the N most recent
        [--json | --chrome]              raw JSON / Chrome trace-event JSON
        [--out PATH]                     write the export to a file instead of stdout
        [--timeout-ms N]                 read deadline for the scrape (default 30000)
  help                                 this message

instance presets (topo-stats, auction, serve): --paper for the full §3.3
instance, --scale for the 100-BP ROADMAP stress instance, laptop-scale
default otherwise. `serve` records causal traces by default; --no-trace
disables the flight recorder.";

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).map(|s| s.as_str())
}

/// Parse `--name N` as a number, with a CLI-friendly error.
fn num_opt<T: std::str::FromStr>(rest: &[String], name: &str) -> Result<Option<T>, String> {
    opt(rest, name)
        .map(|raw| raw.parse().map_err(|_| format!("{name} wants a number, got {raw:?}")))
        .transpose()
}

/// Instance preset shared by `topo-stats`, `auction`, and `serve`.
#[derive(Clone, Copy, PartialEq)]
enum Preset {
    Small,
    Paper,
    Scale,
}

fn preset(rest: &[String]) -> Result<Preset, String> {
    match (flag(rest, "--paper"), flag(rest, "--scale")) {
        (true, true) => Err("--paper and --scale are mutually exclusive".into()),
        (true, false) => Ok(Preset::Paper),
        (false, true) => Ok(Preset::Scale),
        (false, false) => Ok(Preset::Small),
    }
}

fn build_instance(preset: Preset) -> (PocTopology, TrafficMatrix) {
    let (zoo, total) = match preset {
        Preset::Small => (ZooConfig::small(), 2500.0),
        Preset::Paper => (ZooConfig::paper(), 24000.0),
        Preset::Scale => (ZooConfig::scale(), 24000.0),
    };
    let mut topo = ZooGenerator::new(zoo).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm =
        TrafficScenario { total_gbps: total, ..TrafficScenario::paper_default() }.generate(&topo);
    (topo, tm)
}

fn cmd_topo_stats(rest: &[String]) -> Result<(), String> {
    let (topo, _) = build_instance(preset(rest)?);
    let stats = TopologyStats::compute(&topo);
    println!("{}", stats.render_table());
    let (min, max) = stats.share_range();
    println!("share range {:.1}%–{:.1}%", min * 100.0, max * 100.0);
    Ok(())
}

fn cmd_auction(rest: &[String]) -> Result<(), String> {
    let preset = preset(rest)?;
    let stride = if preset == Preset::Small { 4 } else { 32 };
    let constraint = match opt(rest, "--constraint").unwrap_or("1") {
        "1" => Constraint::BaseLoad,
        "2" => Constraint::SinglePathFailure { sample_every: stride },
        "3" => Constraint::AllPairsBackup,
        other => return Err(format!("unknown constraint {other:?} (use 1, 2 or 3)")),
    };
    let (topo, tm) = build_instance(preset);
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    let out = run_auction(&market, &tm, constraint, &selector)
        .map_err(|e| format!("auction failed: {e}"))?;
    println!(
        "constraint {}: |SL| = {}, C(SL) = ${:.0}/mo",
        constraint.label(),
        out.selected.len(),
        out.total_cost
    );
    println!("{:<10}{:>12}{:>12}{:>10}", "BP", "bid $", "payment $", "PoB");
    for s in &out.settlements {
        if s.bid_cost > 0.0 {
            println!(
                "{:<10}{:>12.0}{:>12.0}{:>10.4}",
                s.bp.to_string(),
                s.bid_cost,
                s.payment,
                s.pob().unwrap_or(0.0)
            );
        }
    }
    Ok(())
}

fn cmd_welfare() -> Result<(), String> {
    let economy = Economy::example();
    let reports = economy.compare_regimes();
    println!("{:<16}{:>10}{:>12}{:>10}", "regime", "welfare", "consumer", "fees");
    for r in &reports {
        println!(
            "{:<16}{:>10.2}{:>12.2}{:>10.2}",
            r.regime.label(),
            r.total_welfare(),
            r.total_consumer_surplus(),
            r.total_fees()
        );
    }
    Ok(())
}

fn cmd_drill(rest: &[String]) -> Result<(), String> {
    let n_failures: usize = opt(rest, "--failures")
        .unwrap_or("6")
        .parse()
        .map_err(|_| "--failures wants a number".to_string())?;
    let (topo, tm) = build_instance(Preset::Small);
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    let spec = DrillSpec { n_failures, outage_hours: 1.0, gap_hours: 0.5 };
    for c in Constraint::paper_suite(4) {
        let oracle = FeasibilityOracle::new(&topo, &tm, c);
        let Some(sel) = selector.select(&market, &oracle, market.offered()) else {
            println!("{}: infeasible", c.label());
            continue;
        };
        let drill = run_drill(&topo, &sel.links, &tm, &spec)
            .map_err(|e| format!("drill unroutable: {e}"))?;
        println!(
            "{}: |SL| = {}, cost ${:.0}, availability {:.2}%, reroutes {}",
            c.label(),
            sel.links.len(),
            sel.cost,
            drill.availability * 100.0,
            drill.total_reroutes
        );
    }
    Ok(())
}

/// Safe lease migration, two ways. Locally: run the auction, re-run it
/// under demand scaled by `--headroom`, and walk the fabric from the
/// first selection to the second with every intermediate set verified —
/// optionally cutting/recalling links mid-walk to drill the replanner.
/// With `--addr`: ask a running server to do the same under its journal,
/// or (`--status`) how its last transition ended.
fn cmd_transition(rest: &[String]) -> Result<(), String> {
    use public_option_core::netsim::{run_transition_drill, TransitionDrillSpec};

    let headroom = num_opt::<f64>(rest, "--headroom")?.unwrap_or(1.5);
    if !headroom.is_finite() || headroom <= 0.0 {
        return Err(format!("--headroom wants a positive finite factor, got {headroom}"));
    }
    let max_extra = num_opt::<usize>(rest, "--max-extra")?;

    if let Some(raw) = opt(rest, "--addr") {
        let addr: std::net::SocketAddr =
            raw.parse().map_err(|e| format!("bad --addr {raw:?}: {e}"))?;
        // Transitions verify every intermediate set; give them the same
        // generous deadline as auction rounds.
        let config = public_option_core::ctrlplane::ClientConfig {
            read_timeout: std::time::Duration::from_millis(
                num_opt::<u64>(rest, "--timeout-ms")?.unwrap_or(600_000),
            ),
            ..Default::default()
        };
        let mut client = public_option_core::ctrlplane::PocClient::connect_with(addr, config)
            .map_err(|e| format!("connect {addr}: {e} (is `poc serve` running?)"))?;
        let summary = if flag(rest, "--status") {
            match client.transition_status().map_err(|e| format!("status: {e}"))? {
                Some(s) => s,
                None => {
                    println!("no transition has finished on this server");
                    return Ok(());
                }
            }
        } else {
            client
                .begin_transition(max_extra, Some(headroom))
                .map_err(|e| format!("transition: {e}"))?
        };
        println!(
            "{}: {} -> {} links, {} steps, {} replans, {} rollbacks{}",
            summary.outcome,
            summary.n_from_links,
            summary.n_final_links,
            summary.steps_applied,
            summary.replans,
            summary.rollbacks,
            if summary.recovered { " (finished by crash recovery)" } else { "" }
        );
        return Ok(());
    }

    let stride = if preset(rest)? == Preset::Small { 4 } else { 32 };
    let constraint = match opt(rest, "--constraint").unwrap_or("1") {
        "1" => Constraint::BaseLoad,
        "2" => Constraint::SinglePathFailure { sample_every: stride },
        "3" => Constraint::AllPairsBackup,
        other => return Err(format!("unknown constraint {other:?} (use 1, 2 or 3)")),
    };
    let (topo, tm) = build_instance(preset(rest)?);
    let mut poc = Poc::new(topo, PocConfig { constraint, ..PocConfig::default() });
    poc.run_auction_round(&tm).map_err(|e| format!("auction failed: {e}"))?;
    let from = poc.last_outcome().expect("round just ran").selected.clone();
    let mut forecast = tm.clone();
    forecast.scale(headroom);
    let to = poc
        .compute_auction_outcome(&forecast)
        .map_err(|e| format!("forecast auction failed: {e}"))?
        .selected;
    println!(
        "migrating {} -> {} links (headroom x{headroom}, constraint {})",
        from.len(),
        to.len(),
        constraint.label()
    );

    let spec = TransitionDrillSpec {
        n_cuts: num_opt(rest, "--cut")?.unwrap_or(0),
        n_recalls: num_opt(rest, "--recall")?.unwrap_or(0),
        at_poll: 0,
    };
    // Intermediates are verified against the *live* matrix — the traffic
    // the fabric carries during the walk; the forecast only picked the
    // destination (same contract as the server's BeginTransition).
    let rep = run_transition_drill(poc.topo(), &tm, constraint, &from, &to, &spec)
        .map_err(|e| format!("{e}"))?;
    println!(
        "{:?}: {} steps, {} replans, {} rollbacks, final {} links",
        rep.outcome,
        rep.steps_applied,
        rep.replans,
        rep.rollbacks,
        rep.final_state.len()
    );
    if !rep.cut_links.is_empty() {
        println!("cut mid-walk: {:?}", rep.cut_links);
    }
    if !rep.recalled_links.is_empty() {
        println!("recalled mid-walk: {:?}", rep.recalled_links);
    }
    println!(
        "safety: {} infeasible intermediates, {} dead-link reappearances",
        rep.unsafe_intermediates, rep.dead_link_reappearances
    );
    Ok(())
}

/// The paper's full loop in one command: a VCG round leases the fabric,
/// the packet engine replays the traffic matrix on those leases, and the
/// delivered bytes settle through the ledger — locally, or against a
/// running `poc serve` with `--addr`.
fn cmd_dataplane(rest: &[String]) -> Result<(), String> {
    use public_option_core::ctrlplane::AttachRole;
    use public_option_core::netsim::engine::{Engine, EngineConfig, SourceKind};
    use public_option_core::netsim::sim::IngressThrottle;
    use public_option_core::netsim::{detect_throttling_packets, ThrottleSpec};
    use public_option_core::topology::RouterId;
    use public_option_core::traffic::UserFlowModel;

    let horizon_ms = num_opt::<u64>(rest, "--horizon-ms")?.unwrap_or(20);
    if horizon_ms == 0 {
        return Err("--horizon-ms must be at least 1".into());
    }
    let cheat = num_opt::<f64>(rest, "--cheat")?;
    if let Some(f) = cheat {
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("--cheat wants a factor in [0,1], got {f}"));
        }
    }
    let (topo, tm) = build_instance(preset(rest)?);

    // The auction runs locally either way: with --addr the server runs the
    // same deterministic round on the same preset, so the local selection
    // mirrors the leases the server actually holds.
    let mut poc = Poc::new(topo, PocConfig::default());
    poc.run_auction_round(&tm).map_err(|e| format!("auction failed: {e}"))?;
    let outcome = poc.last_outcome().expect("round just ran");
    let selected = outcome.selected.clone();
    println!("auction: |SL| = {} links, C(SL) = ${:.0}/mo", selected.len(), outcome.total_cost);

    // Two LMPs split the attachment points; the suspect class is the
    // traffic metro-a originates (the class --cheat throttles).
    let last = RouterId::from_index(poc.topo().n_routers() - 1);
    let mut remote = match opt(rest, "--addr") {
        Some(raw) => {
            let addr: std::net::SocketAddr =
                raw.parse().map_err(|e| format!("bad --addr {raw:?}: {e}"))?;
            Some(
                public_option_core::ctrlplane::PocClient::connect(addr)
                    .map_err(|e| format!("connect {addr}: {e} (is `poc serve` running?)"))?,
            )
        }
        None => None,
    };
    let (lmp_a, lmp_b) = match &mut remote {
        Some(client) => {
            let a = client
                .attach("metro-a", AttachRole::Lmp { router: RouterId(0) })
                .map_err(|e| format!("attach metro-a: {e}"))?;
            let b = client
                .attach("metro-b", AttachRole::Lmp { router: last })
                .map_err(|e| format!("attach metro-b: {e}"))?;
            client.run_auction().map_err(|e| format!("server round: {e}"))?;
            (a, b)
        }
        None => {
            let a = poc.attach_lmp("metro-a", RouterId(0)).map_err(|e| format!("attach: {e}"))?;
            let b = poc.attach_lmp("metro-b", last).map_err(|e| format!("attach: {e}"))?;
            (a, b)
        }
    };

    // Packets on the leased fabric.
    let cfg = EngineConfig {
        horizon_ns: horizon_ms * 1_000_000,
        throttles: match cheat {
            Some(factor) => vec![IngressThrottle { tag: "suspect".into(), factor }],
            None => vec![],
        },
        ..Default::default()
    };
    let mut eng = Engine::new(poc.topo(), &selected, cfg).map_err(|e| format!("engine: {e}"))?;
    let classify = |src: RouterId| {
        if src.index().is_multiple_of(2) {
            (Some(lmp_a), "suspect".to_string())
        } else {
            (Some(lmp_b), "control".to_string())
        }
    };
    eng.add_traffic_matrix(&tm, &UserFlowModel::default(), SourceKind::Persistent, classify)
        .map_err(|e| format!("engine ingest: {e}"))?;
    println!(
        "data plane: {} sources standing in for {} user flows, horizon {horizon_ms} ms",
        eng.n_sources(),
        eng.n_user_flows()
    );
    let report = eng.run();
    println!(
        "packets: {} events, {} injected / {} delivered / {} dropped, {:.1} Gbit/s delivered, \
         availability {:.4}",
        report.events,
        report.packets_injected,
        report.packets_delivered,
        report.packets_dropped,
        report.delivered_gbps(),
        report.overall_availability()
    );

    // The auditor's view: packet goodput, suspect vs control.
    if let Some(finding) = detect_throttling_packets(&report, &ThrottleSpec::default()) {
        println!(
            "neutrality: suspect/control goodput ratio {:.3} → {}",
            finding.ratio,
            if finding.throttled { "FLAGGED (ToS breach)" } else { "clean" }
        );
    }

    // Money: delivered bytes settle the period.
    match &mut remote {
        Some(client) => {
            client
                .report_usage_batch(&report.usage_by_owner)
                .map_err(|e| format!("report usage: {e}"))?;
            let bill = client.run_billing().map_err(|e| format!("billing: {e}"))?;
            println!(
                "billing (remote): outlay ${:.0}, unit price ${:.4}/Gbit/s, POC net ${:.4}",
                bill.total_outlay, bill.unit_price, bill.poc_net
            );
            for (name, id) in [("metro-a", lmp_a), ("metro-b", lmp_b)] {
                let bal = client.balance(id).map_err(|e| format!("balance: {e}"))?;
                println!("  {name}: balance ${bal:.0}");
            }
        }
        None => {
            let bill =
                poc.billing_cycle(&report.usage_by_owner).map_err(|e| format!("billing: {e}"))?;
            println!(
                "billing: outlay ${:.0}, unit price ${:.4}/Gbit/s, POC net ${:.4}",
                bill.total_outlay, bill.unit_price, bill.poc_net
            );
            for (name, id) in [("metro-a", lmp_a), ("metro-b", lmp_b)] {
                use public_option_core::core::settlement::Account;
                println!("  {name}: balance ${:.0}", poc.ledger().balance(Account::Entity(id)));
            }
            println!("ledger conservation error: {:.3e}", poc.ledger().conservation_error());
        }
    }
    Ok(())
}

fn cmd_metrics(rest: &[String]) -> Result<(), String> {
    use public_option_core::ctrlplane::ClientConfig;
    let addr = opt(rest, "--addr").unwrap_or("127.0.0.1:7700");
    let addr: std::net::SocketAddr =
        addr.parse().map_err(|e| format!("bad --addr {addr:?}: {e}"))?;
    let mut config = ClientConfig::default();
    if let Some(ms) = num_opt::<u64>(rest, "--timeout-ms")? {
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = num_opt::<u32>(rest, "--retries")? {
        config.retry.max_retries = n;
    }
    if let Some(ms) = num_opt::<u64>(rest, "--backoff-ms")? {
        config.retry.base_backoff = std::time::Duration::from_millis(ms);
    }
    let mut client = public_option_core::ctrlplane::PocClient::connect_with(addr, config)
        .map_err(|e| format!("connect {addr}: {e} (is `poc serve` running?)"))?;
    let snap = client.metrics().map_err(|e| format!("scrape: {e}"))?;
    if flag(rest, "--json") {
        println!("{}", snap.to_json());
        return Ok(());
    }
    if !snap.counters.is_empty() {
        println!("{:<34}{:>14}", "counter", "value");
        for c in &snap.counters {
            println!("{:<34}{:>14}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        println!("\n{:<34}{:>14}", "gauge", "value");
        for g in &snap.gauges {
            println!("{:<34}{:>14.3}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        println!(
            "\n{:<34}{:>8}{:>12}{:>12}{:>12}{:>12}",
            "histogram (ns)", "count", "mean", "p50", "p90", "p99"
        );
        for h in &snap.histograms {
            println!(
                "{:<34}{:>8}{:>12.0}{:>12}{:>12}{:>12}",
                h.name,
                h.count,
                h.mean(),
                h.p50,
                h.p90,
                h.p99
            );
        }
    }
    Ok(())
}

/// Trigger one auction round over the wire, tagged with a trace id, so
/// `poc trace` can show where the round's time went.
fn cmd_round(rest: &[String]) -> Result<(), String> {
    use public_option_core::ctrlplane::ClientConfig;
    let addr = opt(rest, "--addr").unwrap_or("127.0.0.1:7700");
    let addr: std::net::SocketAddr =
        addr.parse().map_err(|e| format!("bad --addr {addr:?}: {e}"))?;
    let mut config = ClientConfig::default().no_retry();
    // Rounds at --scale run for minutes; default the deadline high.
    config.read_timeout =
        std::time::Duration::from_millis(num_opt::<u64>(rest, "--timeout-ms")?.unwrap_or(600_000));
    let trace_id = match num_opt::<u64>(rest, "--trace-id")? {
        Some(id) => id,
        None => public_option_core::obs::trace::new_trace_id(),
    };
    let mut client = public_option_core::ctrlplane::PocClient::connect_with(addr, config)
        .map_err(|e| format!("connect {addr}: {e} (is `poc serve` running?)"))?;
    client.set_trace(Some(trace_id));
    let summary = client.run_auction().map_err(|e| format!("round: {e}"))?;
    println!(
        "round done: |SL| = {}, C(SL) = ${:.0}/mo, payments ${:.0}/mo",
        summary.n_selected_links, summary.total_cost, summary.total_payments
    );
    println!("trace id {trace_id}  (scrape it: poc trace --addr {addr} --id {trace_id})");
    Ok(())
}

/// Scrape and render recorded trace trees from a running server.
fn cmd_trace(rest: &[String]) -> Result<(), String> {
    use public_option_core::ctrlplane::ClientConfig;
    let addr = opt(rest, "--addr").unwrap_or("127.0.0.1:7700");
    let addr: std::net::SocketAddr =
        addr.parse().map_err(|e| format!("bad --addr {addr:?}: {e}"))?;
    let mut config = ClientConfig::default();
    if let Some(ms) = num_opt::<u64>(rest, "--timeout-ms")? {
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    let trace_id = num_opt::<u64>(rest, "--id")?;
    let last_n = num_opt::<usize>(rest, "--last")?;
    let mut client = public_option_core::ctrlplane::PocClient::connect_with(addr, config)
        .map_err(|e| format!("connect {addr}: {e} (is `poc serve` running?)"))?;
    let traces = client.traces(trace_id, last_n).map_err(|e| format!("scrape: {e}"))?;
    if traces.is_empty() {
        return Err("no traces recorded (run `poc round` first, and check the server \
                    isn't running with --no-trace)"
            .into());
    }
    let rendered = if flag(rest, "--chrome") {
        public_option_core::obs::chrome::chrome_trace_json(&traces)
    } else if flag(rest, "--json") {
        serde_json::to_string(&traces).map_err(|e| format!("serialize: {e}"))?
    } else {
        traces
            .iter()
            .map(public_option_core::obs::trace::render_tree)
            .collect::<Vec<_>>()
            .join("\n")
    };
    match opt(rest, "--out") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "{} trace{} -> {path}",
                traces.len(),
                if traces.len() == 1 { "" } else { "s" }
            );
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    use public_option_core::ctrlplane::ServerConfig;
    let addr = opt(rest, "--addr").unwrap_or("127.0.0.1:7700").to_string();
    let mut config = ServerConfig::default();
    if let Some(n) = num_opt::<usize>(rest, "--max-conns")? {
        if n == 0 {
            return Err("--max-conns must be at least 1".into());
        }
        config.max_connections = n;
    }
    if let Some(ms) = num_opt::<u64>(rest, "--idle-timeout-ms")? {
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = num_opt::<u64>(rest, "--write-timeout-ms")? {
        config.write_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = num_opt::<usize>(rest, "--shards")? {
        if n == 0 {
            return Err("--shards must be at least 1".into());
        }
        config.shards = n;
    }
    if let Some(n) = num_opt::<usize>(rest, "--max-queue")? {
        if n == 0 {
            return Err("--max-queue must be at least 1".into());
        }
        config.max_queue = n;
    }
    if let Some(n) = num_opt::<usize>(rest, "--accept-shards")? {
        if n == 0 {
            return Err("--accept-shards must be at least 1".into());
        }
        config.accept_shards = n;
    }
    if let Some(dir) = opt(rest, "--state-dir") {
        let mut durability = public_option_core::ctrlplane::DurabilityConfig::new(dir);
        if let Some(policy) = opt(rest, "--fsync") {
            durability.fsync = public_option_core::ctrlplane::FsyncPolicy::parse(policy)?;
        }
        if let Some(n) = num_opt::<u64>(rest, "--snapshot-every")? {
            durability.snapshot_every = n;
        }
        config.durability = Some(durability);
    } else if opt(rest, "--fsync").is_some() || opt(rest, "--snapshot-every").is_some() {
        return Err("--fsync/--snapshot-every require --state-dir".into());
    }
    // The flight recorder is on by default for the CLI server — the
    // recorder is bounded and a traced request is the whole point of
    // `poc round` + `poc trace`. `--no-trace` restores the library
    // default (disabled, ~zero overhead).
    let tracing = !flag(rest, "--no-trace");
    public_option_core::obs::trace::recorder().set_enabled(tracing);
    let (topo, tm) = build_instance(preset(rest)?);
    let poc = Poc::new(topo, PocConfig::default());
    let (server, handle) =
        public_option_core::ctrlplane::PocServer::bind_with(&addr, poc, tm, config.clone())
            .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("POC control plane listening on {}", handle.local_addr);
    println!(
        "tracing: {}",
        if tracing {
            "flight recorder on (`poc round` then `poc trace --chrome`)"
        } else {
            "off (--no-trace)"
        }
    );
    println!(
        "limits: {} connections, idle eviction after {:?}, write deadline {:?}",
        config.max_connections, config.idle_timeout, config.write_timeout
    );
    println!(
        "pipeline: {} usage shards, {} requests in flight before Busy, {} accept threads",
        config.shards, config.max_queue, config.accept_shards
    );
    match &config.durability {
        Some(d) => println!(
            "state: {} (fsync {:?}, snapshot every {} events) — recovered and journaling",
            d.state_dir.display(),
            d.fsync,
            d.snapshot_every
        ),
        None => println!("state: in memory only (give --state-dir to survive restarts)"),
    }
    println!("press Ctrl-C to stop");
    // Blocks in the accept loop; Ctrl-C terminates the process.
    server.run();
    Ok(())
}
